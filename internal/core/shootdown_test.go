package core_test

import (
	"fmt"
	"testing"

	"shootdown/internal/core"
	"shootdown/internal/fault"
	"shootdown/internal/machine"
	"shootdown/internal/mem"
	"shootdown/internal/pmap"
	"shootdown/internal/ptable"
	"shootdown/internal/sim"
	"shootdown/internal/tlb"
	"shootdown/internal/xpr"
)

// world is a machine + pmap system + shootdown wired together, without the
// kernel scheduler: test procs play the role of threads pinned to CPUs.
type world struct {
	eng *sim.Engine
	m   *machine.Machine
	sd  *core.Shootdown
	sys *pmap.System
}

func newWorld(t *testing.T, ncpu int, chaosSeed int64) *world {
	t.Helper()
	var eng *sim.Engine
	if chaosSeed != 0 {
		eng = sim.New(sim.WithMaxTime(60_000_000_000), sim.WithChaos(chaosSeed))
	} else {
		eng = sim.New(sim.WithMaxTime(60_000_000_000))
	}
	costs := machine.DefaultCosts()
	costs.JitterPct = 0
	m := machine.New(eng, machine.Options{NumCPUs: ncpu, MemFrames: 1024, Costs: costs, Seed: chaosSeed})
	sd := core.New(m, core.Options{})
	sys, err := pmap.NewSystem(m, sd)
	if err != nil {
		t.Fatal(err)
	}
	return &world{eng: eng, m: m, sd: sd, sys: sys}
}

// mapPage allocates a frame and enters it into pm at va via an Exec-free
// direct table write (setup shortcut used before procs start).
func (w *world) mapPageRaw(t *testing.T, pm *pmap.Pmap, va ptable.VAddr, prot pmap.Prot) mem.Frame {
	t.Helper()
	f, err := w.m.Phys.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.Table.Enter(va, ptable.Make(f, prot.CanWrite())); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestShootdownPreventsStaleWrites is the §5.1 consistency scenario at the
// pmap level: writers on several CPUs cache a writable entry; one CPU
// reprotects the page read-only; after Protect returns, no write may
// succeed anywhere.
func TestShootdownPreventsStaleWrites(t *testing.T) {
	const ncpu = 4
	w := newWorld(t, ncpu, 0)
	up, err := w.sys.NewUser()
	if err != nil {
		t.Fatal(err)
	}
	page := ptable.VAddr(0x10000)
	w.mapPageRaw(t, up, page, pmap.ProtRW)

	var protectDone sim.Time = -1
	violations := 0
	writersDone := 0

	for i := 1; i < ncpu; i++ {
		cpu := i
		w.eng.Spawn(fmt.Sprintf("writer%d", cpu), func(p *sim.Proc) {
			ex := w.m.Attach(p, cpu)
			defer ex.Detach()
			up.Activate(ex, cpu)
			va := page + ptable.VAddr(cpu*8)
			for n := uint32(0); ; n++ {
				fault := ex.Write(va, n)
				if fault != nil {
					break // reprotected; thread takes its write fault
				}
				if protectDone >= 0 && ex.Now() > protectDone {
					violations++
				}
				ex.Advance(5_000)
			}
			writersDone++
		})
	}
	w.eng.Spawn("initiator", func(p *sim.Proc) {
		ex := w.m.Attach(p, 0)
		defer ex.Detach()
		up.Activate(ex, 0)
		ex.Advance(200_000) // let writers populate their TLBs
		up.Protect(ex, page, page+mem.PageSize, pmap.ProtRead)
		protectDone = ex.Now()
	})
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("%d writes succeeded after Protect returned", violations)
	}
	if writersDone != ncpu-1 {
		t.Fatalf("only %d writers faulted out", writersDone)
	}
	st := w.sd.Stats()
	if st.Syncs == 0 || st.IPIsSent == 0 {
		t.Fatalf("shootdown never exercised: %+v", st)
	}
}

// nullStrategy does nothing — demonstrating that the simulated hardware
// really produces inconsistencies without a consistency mechanism.
type nullStrategy struct{}

func (nullStrategy) Name() string                 { return "none" }
func (nullStrategy) Begin(*machine.Exec) *core.Op { return &core.Op{} }
func (nullStrategy) Sync(*machine.Exec, *core.Op, core.Pmap, ptable.VAddr, ptable.VAddr) int {
	return 0
}
func (nullStrategy) Finish(*machine.Exec, *core.Op) {}
func (nullStrategy) GoIdle(*machine.Exec)           {}
func (nullStrategy) GoActive(*machine.Exec)         {}

func TestWithoutShootdownStaleWritesHappen(t *testing.T) {
	const ncpu = 4
	eng := sim.New(sim.WithMaxTime(60_000_000_000))
	costs := machine.DefaultCosts()
	costs.JitterPct = 0
	m := machine.New(eng, machine.Options{NumCPUs: ncpu, MemFrames: 1024, Costs: costs})
	sys, err := pmap.NewSystem(m, nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	up, err := sys.NewUser()
	if err != nil {
		t.Fatal(err)
	}
	page := ptable.VAddr(0x10000)
	f, _ := m.Phys.AllocFrame()
	if err := up.Table.Enter(page, ptable.Make(f, true)); err != nil {
		t.Fatal(err)
	}

	var protectDone sim.Time = -1
	violations := 0
	for i := 1; i < ncpu; i++ {
		cpu := i
		eng.Spawn(fmt.Sprintf("writer%d", cpu), func(p *sim.Proc) {
			ex := m.Attach(p, cpu)
			defer ex.Detach()
			up.Activate(ex, cpu)
			va := page + ptable.VAddr(cpu*8)
			for n := uint32(0); n < 500; n++ {
				if ex.Write(va, n) != nil {
					break
				}
				if protectDone >= 0 && ex.Now() > protectDone {
					violations++
				}
				ex.Advance(5_000)
			}
		})
	}
	eng.Spawn("initiator", func(p *sim.Proc) {
		ex := m.Attach(p, 0)
		defer ex.Detach()
		up.Activate(ex, 0)
		ex.Advance(200_000)
		up.Protect(ex, page, page+mem.PageSize, pmap.ProtRead)
		protectDone = ex.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if violations == 0 {
		t.Fatal("expected stale-TLB writes without a consistency mechanism; the problem did not manifest")
	}
}

// TestCrossedShootdownsNoDeadlock exercises two initiators shooting at each
// other — one on the kernel pmap, one on a user pmap — which is exactly
// the deadlock the active-set removal avoids.
func TestCrossedShootdownsNoDeadlock(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := newWorld(t, 4, seed)
			up, err := w.sys.NewUser()
			if err != nil {
				t.Fatal(err)
			}
			upage := ptable.VAddr(0x20000)
			kpage := machine.KernelBase + 0x30000
			w.mapPageRaw(t, up, upage, pmap.ProtRW)
			w.mapPageRaw(t, w.sys.Kernel, kpage, pmap.ProtRW)

			// Users of both pmaps on cpus 2 and 3.
			for i := 2; i < 4; i++ {
				cpu := i
				w.eng.Spawn(fmt.Sprintf("user%d", cpu), func(p *sim.Proc) {
					ex := w.m.Attach(p, cpu)
					defer ex.Detach()
					up.Activate(ex, cpu)
					for n := uint32(0); ; n++ {
						uFault := ex.Write(upage, n)
						kFault := ex.Write(kpage, n)
						if uFault != nil && kFault != nil {
							break
						}
						ex.Advance(3_000)
					}
				})
			}
			w.eng.Spawn("userInitiator", func(p *sim.Proc) {
				ex := w.m.Attach(p, 0)
				defer ex.Detach()
				up.Activate(ex, 0)
				ex.Advance(150_000)
				up.Protect(ex, upage, upage+mem.PageSize, pmap.ProtRead)
			})
			w.eng.Spawn("kernelInitiator", func(p *sim.Proc) {
				ex := w.m.Attach(p, 1)
				defer ex.Detach()
				ex.Advance(150_000) // collide with the user initiator
				w.sys.Kernel.Protect(ex, kpage, kpage+mem.PageSize, pmap.ProtRead)
			})
			if err := w.eng.Run(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestResponderCeasesUsingPmap: a responder that deactivates the pmap
// before its interrupt arrives must not be waited for.
func TestResponderCeasesUsingPmap(t *testing.T) {
	w := newWorld(t, 3, 0)
	up, err := w.sys.NewUser()
	if err != nil {
		t.Fatal(err)
	}
	page := ptable.VAddr(0x40000)
	w.mapPageRaw(t, up, page, pmap.ProtRW)

	w.eng.Spawn("transient", func(p *sim.Proc) {
		ex := w.m.Attach(p, 1)
		defer ex.Detach()
		up.Activate(ex, 1)
		if f := ex.Write(page, 1); f != nil {
			t.Errorf("write: %v", f)
		}
		// Leave the address space with interrupts hard-disabled, so the
		// initiator can never get an ack from us via the responder; it
		// must notice in_use going false instead.
		s := ex.DisableAll()
		ex.Advance(300_000)
		up.Deactivate(ex, 1)
		ex.Advance(2_000_000)
		ex.RestoreIPL(s)
	})
	done := false
	w.eng.Spawn("initiator", func(p *sim.Proc) {
		ex := w.m.Attach(p, 0)
		defer ex.Detach()
		up.Activate(ex, 0)
		ex.Advance(400_000) // transient has written and is mid-disable
		up.Protect(ex, page, page+mem.PageSize, pmap.ProtRead)
		done = true
	})
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("initiator never completed")
	}
}

// TestIdleOptimization: idle processors get actions queued but no IPI, and
// drain the queue on GoActive.
func TestIdleOptimization(t *testing.T) {
	w := newWorld(t, 2, 0)
	kpage := machine.KernelBase + 0x50000
	w.mapPageRaw(t, w.sys.Kernel, kpage, pmap.ProtRW)

	w.eng.Spawn("idler", func(p *sim.Proc) {
		ex := w.m.Attach(p, 1)
		defer ex.Detach()
		// Cache the kernel page, then go idle.
		if f := ex.Write(kpage, 1); f != nil {
			t.Errorf("write: %v", f)
		}
		w.sd.GoIdle(ex)
		ex.Advance(2_000_000)
		// Leaving idle must drain the queued invalidation.
		w.sd.GoActive(ex)
		if w.sd.ActionNeeded(1) {
			t.Error("action still pending after GoActive")
		}
		// The stale writable entry must be gone: write faults now.
		if f := ex.Write(kpage, 2); f == nil {
			t.Error("stale TLB entry survived idle drain")
		}
	})
	w.eng.Spawn("initiator", func(p *sim.Proc) {
		ex := w.m.Attach(p, 0)
		defer ex.Detach()
		ex.Advance(500_000) // idler is idle now
		w.sys.Kernel.Protect(ex, kpage, kpage+mem.PageSize, pmap.ProtRead)
	})
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := w.sd.Stats()
	if st.IdleSkipped == 0 {
		t.Fatalf("idle optimization never used: %+v", st)
	}
	if st.IPIsSent != 0 {
		t.Fatalf("IPIs sent to idle processor: %+v", st)
	}
}

func TestIdleOptimizationDisabled(t *testing.T) {
	eng := sim.New(sim.WithMaxTime(60_000_000_000))
	costs := machine.DefaultCosts()
	costs.JitterPct = 0
	m := machine.New(eng, machine.Options{NumCPUs: 2, MemFrames: 512, Costs: costs})
	sd := core.New(m, core.Options{DisableIdleOptimization: true})
	sys, err := pmap.NewSystem(m, sd)
	if err != nil {
		t.Fatal(err)
	}
	kpage := machine.KernelBase + 0x50000
	f, _ := m.Phys.AllocFrame()
	if err := sys.Kernel.Table.Enter(kpage, ptable.Make(f, true)); err != nil {
		t.Fatal(err)
	}
	eng.Spawn("idler", func(p *sim.Proc) {
		ex := m.Attach(p, 1)
		defer ex.Detach()
		sd.GoIdle(ex)
		ex.Advance(3_000_000) // idle loop with interrupts enabled
	})
	eng.Spawn("initiator", func(p *sim.Proc) {
		ex := m.Attach(p, 0)
		defer ex.Detach()
		ex.Advance(500_000)
		sys.Kernel.Protect(ex, kpage, kpage+mem.PageSize, pmap.ProtRead)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sd.Stats().IPIsSent == 0 {
		t.Fatal("with the optimization disabled, the idle CPU should be interrupted")
	}
}

// TestQueueOverflowFallsBackToFlush: more shootdowns than queue slots while
// the responder can't run degrade to a full flush, never losing an
// invalidation.
func TestQueueOverflowFlush(t *testing.T) {
	eng := sim.New(sim.WithMaxTime(120_000_000_000))
	costs := machine.DefaultCosts()
	costs.JitterPct = 0
	m := machine.New(eng, machine.Options{NumCPUs: 2, MemFrames: 512, Costs: costs})
	sd := core.New(m, core.Options{QueueSize: 2})
	sys, err := pmap.NewSystem(m, sd)
	if err != nil {
		t.Fatal(err)
	}
	base := machine.KernelBase + 0x100000
	for i := 0; i < 6; i++ {
		f, _ := m.Phys.AllocFrame()
		if err := sys.Kernel.Table.Enter(base+ptable.VAddr(i*mem.PageSize), ptable.Make(f, true)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Spawn("idler", func(p *sim.Proc) {
		ex := m.Attach(p, 1)
		defer ex.Detach()
		// Cache all six pages writable.
		for i := 0; i < 6; i++ {
			if f := ex.Write(base+ptable.VAddr(i*mem.PageSize), 1); f != nil {
				t.Errorf("prime write %d: %v", i, f)
			}
		}
		sd.GoIdle(ex) // queue fills while we're idle (no IPIs)
		ex.Advance(30_000_000)
		sd.GoActive(ex)
		// Every page must now be read-only despite the overflow.
		for i := 0; i < 6; i++ {
			if f := ex.Write(base+ptable.VAddr(i*mem.PageSize), 2); f == nil {
				t.Errorf("page %d still writable after overflow drain", i)
			}
		}
	})
	eng.Spawn("initiator", func(p *sim.Proc) {
		ex := m.Attach(p, 0)
		defer ex.Detach()
		ex.Advance(1_000_000)
		for i := 0; i < 6; i++ {
			va := base + ptable.VAddr(i*mem.PageSize)
			sys.Kernel.Protect(ex, va, va+mem.PageSize, pmap.ProtRead)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := sd.Stats()
	if st.QueueOverflows == 0 {
		t.Fatalf("queue never overflowed: %+v", st)
	}
	if st.FullFlushes == 0 {
		t.Fatalf("overflow did not flush: %+v", st)
	}
}

// TestQueueOverflowDegradationTable drives the consistency-action queue
// through every regime — comfortably fits, exactly full, one over, far
// over — and checks detail 2 of Section 4 in each: enqueues past QueueSize
// put the queue into the overflow state exactly when they should, overflow
// degrades the drain to a full TLB flush, and no regime ever loses an
// invalidation (every reprotected page faults on write after the drain).
// FlushThreshold is pinned far above the page count so a full flush can
// only come from overflow, not from the size heuristic.
func TestQueueOverflowDegradationTable(t *testing.T) {
	cases := []struct {
		name         string
		queueSize    int
		pages        int
		wantOverflow bool
	}{
		{"fits", 8, 4, false},
		{"exactly-full", 4, 4, false},
		{"one-over", 4, 5, true},
		{"tiny-queue", 2, 6, true},
		{"single-slot", 1, 3, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.New(sim.WithMaxTime(120_000_000_000))
			costs := machine.DefaultCosts()
			costs.JitterPct = 0
			m := machine.New(eng, machine.Options{NumCPUs: 2, MemFrames: 512, Costs: costs})
			sd := core.New(m, core.Options{QueueSize: tc.queueSize, FlushThreshold: 100})
			sys, err := pmap.NewSystem(m, sd)
			if err != nil {
				t.Fatal(err)
			}
			base := machine.KernelBase + 0x180000
			for i := 0; i < tc.pages; i++ {
				f, _ := m.Phys.AllocFrame()
				if err := sys.Kernel.Table.Enter(base+ptable.VAddr(i*mem.PageSize), ptable.Make(f, true)); err != nil {
					t.Fatal(err)
				}
			}
			eng.Spawn("idler", func(p *sim.Proc) {
				ex := m.Attach(p, 1)
				defer ex.Detach()
				for i := 0; i < tc.pages; i++ {
					if f := ex.Write(base+ptable.VAddr(i*mem.PageSize), 1); f != nil {
						t.Errorf("prime write %d: %v", i, f)
					}
				}
				sd.GoIdle(ex) // queue fills while we're idle (no IPIs)
				ex.Advance(30_000_000)
				sd.GoActive(ex)
				for i := 0; i < tc.pages; i++ {
					if f := ex.Write(base+ptable.VAddr(i*mem.PageSize), 2); f == nil {
						t.Errorf("page %d still writable after drain", i)
					}
				}
			})
			eng.Spawn("initiator", func(p *sim.Proc) {
				ex := m.Attach(p, 0)
				defer ex.Detach()
				ex.Advance(1_000_000)
				for i := 0; i < tc.pages; i++ {
					va := base + ptable.VAddr(i*mem.PageSize)
					sys.Kernel.Protect(ex, va, va+mem.PageSize, pmap.ProtRead)
				}
			})
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			st := sd.Stats()
			if tc.wantOverflow {
				if st.QueueOverflows == 0 {
					t.Fatalf("queue never overflowed: %+v", st)
				}
				if st.FullFlushes == 0 {
					t.Fatalf("overflow did not degrade to a full flush: %+v", st)
				}
			} else {
				if st.QueueOverflows != 0 {
					t.Fatalf("unexpected overflow with %d actions in a %d-slot queue: %+v",
						tc.pages, tc.queueSize, st)
				}
				if st.FullFlushes != 0 {
					t.Fatalf("full flush without overflow (threshold should not trip): %+v", st)
				}
				if st.EntriesInvalidated == 0 {
					t.Fatalf("no individual invalidations recorded: %+v", st)
				}
			}
		})
	}
}

// TestLazyEvaluationSkipsUnmappedRanges: reprotecting a never-touched page
// causes no shootdown with lazy evaluation, and does cause one without it
// (when the second-level chunk exists) — the Parthenon guard-page case.
func TestLazyEvaluationSkips(t *testing.T) {
	runCase := func(lazyDisabled bool) (syncs, lazySkips uint64) {
		w := newWorld(t, 2, 0)
		w.sys.LazyDisabled = lazyDisabled
		up, err := w.sys.NewUser()
		if err != nil {
			t.Fatal(err)
		}
		// Map the "first stack page" so the second-level chunk exists;
		// the guard page next to it stays unmapped.
		first := ptable.VAddr(0x100000)
		guard := first + mem.PageSize
		w.mapPageRaw(t, up, first, pmap.ProtRW)
		w.eng.Spawn("other", func(p *sim.Proc) {
			ex := w.m.Attach(p, 1)
			defer ex.Detach()
			up.Activate(ex, 1)
			ex.Advance(3_000_000)
		})
		w.eng.Spawn("main", func(p *sim.Proc) {
			ex := w.m.Attach(p, 0)
			defer ex.Detach()
			up.Activate(ex, 0)
			ex.Advance(100_000)
			up.Protect(ex, guard, guard+mem.PageSize, pmap.ProtRead)
		})
		if err := w.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return w.sd.Stats().Syncs, w.sys.Stats().LazySkips
	}
	syncs, skips := runCase(false)
	if syncs != 0 || skips == 0 {
		t.Fatalf("lazy on: syncs=%d skips=%d; want 0 syncs", syncs, skips)
	}
	syncs, _ = runCase(true)
	if syncs == 0 {
		t.Fatal("lazy off: the guard-page reprotect should shoot down")
	}
}

// TestStructuralLazySurvivesLazyDisabled: with lazy disabled, a range with
// no second-level tables is still skipped.
func TestStructuralLazySkip(t *testing.T) {
	w := newWorld(t, 2, 0)
	w.sys.LazyDisabled = true
	up, err := w.sys.NewUser()
	if err != nil {
		t.Fatal(err)
	}
	w.eng.Spawn("other", func(p *sim.Proc) {
		ex := w.m.Attach(p, 1)
		defer ex.Detach()
		up.Activate(ex, 1)
		ex.Advance(1_000_000)
	})
	w.eng.Spawn("main", func(p *sim.Proc) {
		ex := w.m.Attach(p, 0)
		defer ex.Detach()
		up.Activate(ex, 0)
		ex.Advance(50_000)
		// 64 MB of completely unconstructed address space.
		up.Protect(ex, 0x10000000, 0x14000000, pmap.ProtRead)
	})
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if w.sd.Stats().Syncs != 0 {
		t.Fatal("structural skip failed")
	}
	if w.sys.Stats().StructuralSkips == 0 {
		t.Fatal("structural skip not counted")
	}
}

// TestXprInstrumentation: initiator and responder events are recorded with
// plausible fields.
func TestXprInstrumentation(t *testing.T) {
	w := newWorld(t, 3, 0)
	buf := xpr.New(1024)
	w.sd.Trace = buf
	up, err := w.sys.NewUser()
	if err != nil {
		t.Fatal(err)
	}
	page := ptable.VAddr(0x60000)
	w.mapPageRaw(t, up, page, pmap.ProtRW)
	for i := 1; i < 3; i++ {
		cpu := i
		w.eng.Spawn(fmt.Sprintf("w%d", cpu), func(p *sim.Proc) {
			ex := w.m.Attach(p, cpu)
			defer ex.Detach()
			up.Activate(ex, cpu)
			for {
				if ex.Write(page, 1) != nil {
					break
				}
				ex.Advance(5_000)
			}
		})
	}
	w.eng.Spawn("main", func(p *sim.Proc) {
		ex := w.m.Attach(p, 0)
		defer ex.Detach()
		up.Activate(ex, 0)
		ex.Advance(200_000)
		up.Protect(ex, page, page+mem.PageSize, pmap.ProtRead)
	})
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
	inits := buf.Select(xpr.EvInitiator)
	if len(inits) != 1 {
		t.Fatalf("initiator events = %d, want 1", len(inits))
	}
	kernel, pages, procs, elapsed := inits[0].Initiator()
	if kernel || pages != 1 || procs != 2 {
		t.Fatalf("initiator record = kernel:%v pages:%d procs:%d", kernel, pages, procs)
	}
	if elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
	if len(buf.Select(xpr.EvResponder)) == 0 {
		t.Fatal("no responder events")
	}
}

// TestManySeedsNoViolationNoDeadlock fuzzes interleavings of the full
// consistency scenario.
func TestManySeedsNoViolationNoDeadlock(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		w := newWorld(t, 6, seed)
		up, err := w.sys.NewUser()
		if err != nil {
			t.Fatal(err)
		}
		page := ptable.VAddr(0x70000)
		w.mapPageRaw(t, up, page, pmap.ProtRW)
		var protectDone sim.Time = -1
		violations := 0
		for i := 1; i < 6; i++ {
			cpu := i
			w.eng.Spawn(fmt.Sprintf("w%d", cpu), func(p *sim.Proc) {
				ex := w.m.Attach(p, cpu)
				defer ex.Detach()
				up.Activate(ex, cpu)
				for n := uint32(0); ; n++ {
					if ex.Write(page+ptable.VAddr(cpu*4), n) != nil {
						break
					}
					if protectDone >= 0 && ex.Now() > protectDone {
						violations++
					}
					ex.Advance(sim.Time(1_000 + cpu*700))
				}
			})
		}
		w.eng.Spawn("main", func(p *sim.Proc) {
			ex := w.m.Attach(p, 0)
			defer ex.Detach()
			up.Activate(ex, 0)
			ex.Advance(sim.Time(50_000 + seed*13_000))
			up.Protect(ex, page, page+mem.PageSize, pmap.ProtRead)
			protectDone = ex.Now()
		})
		if err := w.eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violations != 0 {
			t.Fatalf("seed %d: %d stale writes", seed, violations)
		}
	}
}

// TestActionPages checks the helper used for flush-threshold decisions.
func TestActionPages(t *testing.T) {
	a := core.Action{Start: 0x1000, End: 0x1000 + 3*mem.PageSize}
	if a.Pages() != 3 {
		t.Fatalf("Pages = %d", a.Pages())
	}
	b := core.Action{Start: 0x1000, End: 0x1001}
	if b.Pages() != 1 {
		t.Fatalf("partial page Pages = %d", b.Pages())
	}
}

// TestWatchdogEscalationTable walks the initiator watchdog through every
// rung of its escalation ladder — timeout, IPI re-send, exponential backoff
// up to the cap, the conservative full-flush escalation, and finally the
// membership re-check that abandons a wait on a dead (or dead-and-revived)
// responder. One responder on CPU 1 caches a writable entry and then
// misbehaves per the case; the initiator on CPU 0 reprotects the page and
// must always come back, with the stats and the recovery-latency metric
// telling the story of how.
func TestWatchdogEscalationTable(t *testing.T) {
	const respCPU = 1
	const page = ptable.VAddr(0x90000)
	cases := []struct {
		name   string
		opts   core.Options
		faults string   // injector spec for the machine ("" = no injector)
		stall  sim.Time // responder holds interrupts masked this long (0 = open)
		failAt sim.Time // >0: fail-stop the responder's CPU at this time
		revive bool     // bring it straight back (incarnation bump, cold TLB)
		device bool     // device rung: the straggler is a device TLB, not a CPU
		check  func(t *testing.T, st core.Stats, recovery []float64)
	}{
		{
			// The IPI arrived but the responder has interrupts masked:
			// every timeout finds the vector still pending, so the watchdog
			// must wait it out without ever re-sending.
			name: "timeout-pending-ipi-no-resend",
			opts: core.Options{WatchdogTimeout: 200_000, WatchdogMaxRetries: 10},
			// Off the watchdog's check points (500us, 900us, 1.7ms), so no
			// check races the interrupt being serviced at unmask time.
			stall: 1_000_000,
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.WatchdogTimeouts == 0 {
					t.Errorf("no timeouts recorded: %+v", st)
				}
				if st.WatchdogRetries != 0 {
					t.Errorf("retried %d times with the IPI still pending", st.WatchdogRetries)
				}
				if st.WatchdogEscalations != 0 || st.WatchdogMembershipRescues != 0 {
					t.Errorf("escalated against a merely slow responder: %+v", st)
				}
				if len(recovery) != 1 || recovery[0] <= 0 {
					t.Errorf("recovery latency %v, want one positive sample", recovery)
				}
			},
		},
		{
			// The interrupt hardware eats IPIs: the responder spins with
			// interrupts open and never hears the first one, so recovery
			// has to come from a watchdog re-send.
			name:   "dropped-ipi-resent",
			opts:   core.Options{WatchdogTimeout: 200_000, WatchdogMaxRetries: 10},
			faults: "drop=0.9",
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.WatchdogTimeouts == 0 || st.WatchdogRetries == 0 {
					t.Errorf("dropped IPI not retried: %+v", st)
				}
				if st.WatchdogMembershipRescues != 0 {
					t.Errorf("membership rescue against a live responder: %+v", st)
				}
				if len(recovery) == 0 {
					t.Error("no recovery latency recorded")
				}
			},
		},
		{
			// A long stall under a small backoff cap: the retry interval
			// doubles 100→200→400 and then pins at the cap, so the timeout
			// count sits between pure doubling (~5) and no backoff (~30).
			name: "backoff-doubles-to-cap",
			opts: core.Options{
				WatchdogTimeout:    100_000,
				WatchdogBackoffMax: 400_000,
				WatchdogMaxRetries: 50,
			},
			stall: 3_000_000,
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.WatchdogTimeouts < 6 || st.WatchdogTimeouts > 12 {
					t.Errorf("timeouts = %d, want 6..12 (backoff doubling, capped at 400us)", st.WatchdogTimeouts)
				}
				if st.WatchdogEscalations != 0 {
					t.Errorf("escalated below the retry budget: %+v", st)
				}
				if len(recovery) != 1 || recovery[0] <= 0 {
					t.Errorf("recovery latency %v, want one positive sample", recovery)
				}
			},
		},
		{
			// Retry budget exhausted: the straggler's queue is forced into
			// overflow so its eventual drain is one conservative full flush.
			name: "escalates-to-full-flush",
			opts: core.Options{
				WatchdogTimeout:    100_000,
				WatchdogBackoffMax: 100_000,
				WatchdogMaxRetries: 2,
			},
			stall: 1_500_000,
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.WatchdogEscalations == 0 {
					t.Errorf("retry budget blown but never escalated: %+v", st)
				}
				if st.FullFlushes == 0 {
					t.Errorf("escalation did not degrade the drain to a full flush: %+v", st)
				}
				if len(recovery) != 1 || recovery[0] <= 0 {
					t.Errorf("recovery latency %v, want one positive sample", recovery)
				}
			},
		},
		{
			// The responder fail-stops mid-wait: it will never acknowledge,
			// and only the membership re-check can end the wait.
			name:   "member-rescue-fail-stop",
			opts:   core.Options{WatchdogTimeout: 200_000},
			stall:  50_000_000_000, // masked until killed
			failAt: 700_000,
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.WatchdogMembershipRescues == 0 {
					t.Errorf("dead responder never rescued: %+v", st)
				}
				if len(recovery) != 1 || recovery[0] <= 0 {
					t.Errorf("recovery latency %v, want one positive sample", recovery)
				}
			},
		},
		{
			// Fail and revive between two watchdog checks: the CPU is back
			// online, but in a fresh incarnation with a cold TLB — the
			// incarnation captured at scan time unmasks the impostor.
			name:   "member-rescue-revived-incarnation",
			opts:   core.Options{WatchdogTimeout: 1_000_000},
			stall:  50_000_000_000, // masked until killed
			failAt: 600_000,
			revive: true,
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.WatchdogMembershipRescues == 0 {
					t.Errorf("revived responder never rescued: %+v", st)
				}
				if len(recovery) != 1 || recovery[0] <= 0 {
					t.Errorf("recovery latency %v, want one positive sample", recovery)
				}
			},
		},
		// --- device rungs: the straggler acks by completion message, ---
		// --- not IPI, so its ladder is ring -> reset -> quarantine    ---
		{
			// The initial doorbell ring is always lost: the request sits
			// queued but unnoticed until the watchdog's first timeout
			// re-rings (re-rings are reliable), which rescues the wait.
			name:   "dev-dropped-doorbell-rering",
			opts:   core.Options{WatchdogTimeout: 200_000, WatchdogMaxRetries: 10, DevMaxRerings: 10},
			faults: "devdrop=1",
			device: true,
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.DevCompletionTimeouts == 0 || st.DevRerings == 0 {
					t.Errorf("dropped doorbell not re-rung: %+v", st)
				}
				if st.DevResets != 0 || st.DevQuarantines != 0 {
					t.Errorf("escalated past re-ring against a merely deaf doorbell: %+v", st)
				}
				if len(recovery) != 1 || recovery[0] <= 0 {
					t.Errorf("recovery latency %v, want one positive sample", recovery)
				}
			},
		},
		{
			// The device services the queue but an injected stall holds the
			// completion past the timeout: the watchdog re-rings (harmless)
			// until the stall drains, never escalating to reset.
			name:   "dev-stalled-completion-timeout",
			opts:   core.Options{WatchdogTimeout: 50_000, WatchdogMaxRetries: 10, DevMaxRerings: 50},
			faults: "devstall=1,devstallmax=3ms",
			device: true,
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.DevCompletionTimeouts == 0 {
					t.Errorf("stalled completion never timed out: %+v", st)
				}
				if st.DevResets != 0 || st.DevQuarantines != 0 {
					t.Errorf("escalated against a merely slow device: %+v", st)
				}
				if len(recovery) != 1 || recovery[0] <= 0 {
					t.Errorf("recovery latency %v, want one positive sample", recovery)
				}
			},
		},
		{
			// Re-ring budget exhausted against a long stall: the
			// drain-and-reset rung rescues the wait — its full IOTLB flush
			// satisfies every outstanding request at once.
			name: "dev-escalates-to-reset",
			opts: core.Options{
				WatchdogTimeout:    50_000,
				WatchdogBackoffMax: 100_000,
				WatchdogMaxRetries: 10,
				DevMaxRerings:      2,
			},
			faults: "devstall=1,devstallmax=40ms",
			device: true,
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.DevRerings == 0 || st.DevResets == 0 {
					t.Errorf("re-ring budget blown but never reset: %+v", st)
				}
				if st.DevQuarantines != 0 {
					t.Errorf("quarantined a device a reset had already rescued: %+v", st)
				}
				if len(recovery) != 1 || recovery[0] <= 0 {
					t.Errorf("recovery latency %v, want one positive sample", recovery)
				}
			},
		},
		{
			// A wedged device ignores re-rings and the reset too: the final
			// rung fail-stops it and the shootdown completes without its
			// acknowledgement (the harness asserts the initiator came back).
			name: "dev-wedge-quarantined",
			opts: core.Options{
				WatchdogTimeout:    50_000,
				WatchdogBackoffMax: 100_000,
				WatchdogMaxRetries: 10,
				DevMaxRerings:      2,
			},
			faults: "devwedge=1",
			device: true,
			check: func(t *testing.T, st core.Stats, recovery []float64) {
				if st.DevRerings == 0 || st.DevResets == 0 {
					t.Errorf("quarantine skipped ladder rungs: %+v", st)
				}
				if st.DevQuarantines != 1 {
					t.Errorf("DevQuarantines = %d, want 1: %+v", st.DevQuarantines, st)
				}
				if len(recovery) != 1 || recovery[0] <= 0 {
					t.Errorf("recovery latency %v, want one positive sample", recovery)
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.device {
				runDeviceEscalation(t, tc.opts, tc.faults, tc.check)
				return
			}
			eng := sim.New(sim.WithMaxTime(60_000_000_000))
			costs := machine.DefaultCosts()
			costs.JitterPct = 0
			mo := machine.Options{NumCPUs: 2, MemFrames: 1024, Costs: costs}
			if tc.faults != "" {
				fc, err := fault.ParseSpec(tc.faults)
				if err != nil {
					t.Fatal(err)
				}
				fc.Seed = 11
				mo.Faults = fault.New(fc)
			}
			m := machine.New(eng, mo)
			sd := core.New(m, tc.opts)
			sys, err := pmap.NewSystem(m, sd)
			if err != nil {
				t.Fatal(err)
			}
			up, err := sys.NewUser()
			if err != nil {
				t.Fatal(err)
			}
			f, err := m.Phys.AllocFrame()
			if err != nil {
				t.Fatal(err)
			}
			if err := up.Table.Enter(page, ptable.Make(f, true)); err != nil {
				t.Fatal(err)
			}
			eng.Spawn("responder", func(p *sim.Proc) {
				ex := m.Attach(p, respCPU)
				defer ex.Detach()
				up.Activate(ex, respCPU)
				if fa := ex.Write(page, 1); fa != nil {
					t.Errorf("prime write: %v", fa)
					return
				}
				if tc.stall > 0 {
					prev := ex.DisableAll()
					ex.Advance(tc.stall)
					ex.RestoreIPL(prev)
				}
				// Spin with interrupts open until the invalidation lands.
				for n := uint32(2); ex.Write(page, n) == nil; n++ {
					ex.Advance(5_000)
				}
			})
			done := false
			eng.Spawn("initiator", func(p *sim.Proc) {
				ex := m.Attach(p, 0)
				defer ex.Detach()
				up.Activate(ex, 0)
				ex.Advance(300_000) // let the responder cache the entry
				up.Protect(ex, page, page+mem.PageSize, pmap.ProtRead)
				done = true
			})
			if tc.failAt > 0 {
				eng.Spawn("reaper", func(p *sim.Proc) {
					p.Sleep(tc.failAt)
					if !m.FailCPU(respCPU) {
						t.Error("FailCPU refused")
					}
					if tc.revive && !m.OnlineCPU(respCPU) {
						t.Error("OnlineCPU refused")
					}
				})
			}
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if !done {
				t.Fatal("initiator never completed")
			}
			tc.check(t, sd.Stats(), sd.WatchdogRecoveryUS())
		})
	}
}

// runDeviceEscalation is the device-rung harness for the escalation table:
// one device caches a translation via a priming DMA read, then misbehaves
// per the injected fault while the initiator reprotects the page. The
// initiator's completion wait must always come back — via re-ring, reset,
// or quarantine — with the stats and recovery-latency metric recording
// which rung did the rescuing.
func runDeviceEscalation(t *testing.T, opts core.Options, faults string, check func(*testing.T, core.Stats, []float64)) {
	const page = ptable.VAddr(0x90000)
	eng := sim.New(sim.WithMaxTime(60_000_000_000))
	costs := machine.DefaultCosts()
	costs.JitterPct = 0
	mo := machine.Options{NumCPUs: 2, MemFrames: 1024, Costs: costs, NumDevices: 1, DevQueueDepth: 4}
	if faults != "" {
		fc, err := fault.ParseSpec(faults)
		if err != nil {
			t.Fatal(err)
		}
		fc.Seed = 11
		mo.Faults = fault.New(fc)
	}
	m := machine.New(eng, mo)
	sd := core.New(m, opts)
	sys, err := pmap.NewSystem(m, sd)
	if err != nil {
		t.Fatal(err)
	}
	up, err := sys.NewUser()
	if err != nil {
		t.Fatal(err)
	}
	dev := m.Device(0)
	sys.AttachDevice(dev, up)
	f, err := m.Phys.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := up.Table.Enter(page, ptable.Make(f, true)); err != nil {
		t.Fatal(err)
	}
	stop := false
	eng.Spawn("devsvc", func(p *sim.Proc) {
		for !stop {
			if !dev.ServiceOne(p) {
				p.Sleep(20_000)
			}
		}
	})
	done := false
	eng.Spawn("initiator", func(p *sim.Proc) {
		defer func() { stop = true }()
		ex := m.Attach(p, 0)
		defer ex.Detach()
		up.Activate(ex, 0)
		// Prime the device's IOTLB so it genuinely holds the translation
		// the shootdown must kill.
		if _, fa := dev.DMARead(p, page); fa != nil {
			t.Errorf("prime DMA: %v", fa)
			return
		}
		ex.Advance(100_000)
		up.Protect(ex, page, page+mem.PageSize, pmap.ProtRead)
		done = true
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("initiator never completed its shootdown")
	}
	check(t, sd.Stats(), sd.WatchdogRecoveryUS())
}

// TestTaggedTLBFlushByASID: on tagged hardware, a shootdown flush drops
// only the target space's entries.
func TestTaggedFlushScoped(t *testing.T) {
	eng := sim.New(sim.WithMaxTime(60_000_000_000))
	costs := machine.DefaultCosts()
	costs.JitterPct = 0
	m := machine.New(eng, machine.Options{
		NumCPUs: 2, MemFrames: 512, Costs: costs,
		TLB: tlb.Config{Tagged: true},
	})
	sd := core.New(m, core.Options{FlushThreshold: 1})
	sys, err := pmap.NewSystem(m, sd)
	if err != nil {
		t.Fatal(err)
	}
	up, err := sys.NewUser()
	if err != nil {
		t.Fatal(err)
	}
	base := ptable.VAddr(0x200000)
	kpage := machine.KernelBase + 0x9000
	for i := 0; i < 4; i++ {
		f, _ := m.Phys.AllocFrame()
		if err := up.Table.Enter(base+ptable.VAddr(i*mem.PageSize), ptable.Make(f, true)); err != nil {
			t.Fatal(err)
		}
	}
	f, _ := m.Phys.AllocFrame()
	if err := sys.Kernel.Table.Enter(kpage, ptable.Make(f, true)); err != nil {
		t.Fatal(err)
	}
	eng.Spawn("user", func(p *sim.Proc) {
		ex := m.Attach(p, 1)
		defer ex.Detach()
		up.Activate(ex, 1)
		for i := 0; i < 4; i++ {
			if fa := ex.Write(base+ptable.VAddr(i*mem.PageSize), 1); fa != nil {
				t.Errorf("prime: %v", fa)
			}
		}
		if fa := ex.Write(kpage, 1); fa != nil {
			t.Errorf("kernel prime: %v", fa)
		}
		ex.Advance(3_000_000)
		// Kernel entry must have survived the user-space flush.
		st := m.CPU(1).TLB
		if _, hit := st.Probe(kpage, tlb.ASIDNone); !hit {
			t.Error("kernel entry lost to a user-scoped flush")
		}
	})
	eng.Spawn("main", func(p *sim.Proc) {
		ex := m.Attach(p, 0)
		defer ex.Detach()
		up.Activate(ex, 0)
		ex.Advance(500_000)
		// 4 pages > threshold 1 → per-ASID flush on responders.
		up.Protect(ex, base, base+4*mem.PageSize, pmap.ProtRead)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sd.Stats().FullFlushes == 0 {
		t.Fatal("expected threshold flush")
	}
}
