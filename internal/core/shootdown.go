// Package core implements the Mach TLB shootdown algorithm (Section 4 of
// the paper) — the software protocol that keeps per-processor TLBs
// consistent with physical maps on hardware with no remote TLB control.
//
// The algorithm proceeds in four phases once a pmap operation detects that
// its changes could leave an inconsistent TLB entry somewhere:
//
//	1 Initiator: queue consistency actions for every processor using the
//	  pmap, set their action-needed flags, send interrupts, and wait.
//	2 Responders: acknowledge by leaving the active set, then spin until
//	  the initiator finishes its pmap changes (they must neither read nor
//	  write the pmap mid-update: hardware reload could cache a stale entry
//	  and the reference/modify writeback could corrupt the update).
//	3 Initiator: with every relevant processor inactive (or no longer using
//	  the pmap), make the pmap changes and unlock the pmap.
//	4 Responders: perform the queued invalidations, clear their flags, and
//	  rejoin the active set.
//
// All five of the paper's refinements are implemented: initiators notice
// responders that cease using the pmap; crossed shootdowns cannot deadlock
// because initiators remove themselves from the active set and disable
// shootdown interrupts; all interrupts are disabled during the protocol;
// locks carry fixed interrupt priorities (machine.SpinLock); and idle
// processors are not interrupted — they drain their action queues before
// becoming active.
package core

import (
	"fmt"

	"shootdown/internal/hostprof"
	"shootdown/internal/machine"
	"shootdown/internal/mem"
	"shootdown/internal/profile"
	"shootdown/internal/ptable"
	"shootdown/internal/sim"
	"shootdown/internal/tlb"
	"shootdown/internal/trace"
	"shootdown/internal/xpr"
)

// Pmap is the view of a physical map the shootdown algorithm needs. The
// pmap module implements it; keeping it an interface keeps the protocol
// independent of pmap internals (the paper's policy/mechanism separation).
type Pmap interface {
	// Locked reports whether the pmap's update lock is held. Responders
	// spin on this to stall while an update is in progress.
	Locked() bool
	// UpdateInProgress reports whether the pmap's update lock is held by
	// a processor that is still alive in the incarnation that took it.
	// Responders stall on this rather than Locked: a fail-stopped
	// initiator's lock does not signal an in-progress update — its
	// partial update is frozen, and waiting for an unlock that will
	// never come would wedge every responder.
	UpdateInProgress() bool
	// InUse reports whether the given processor is actively translating
	// through this pmap. The kernel pmap is in use on every processor.
	InUse(cpu int) bool
	// ASID tags the pmap's TLB entries on ASID-tagged hardware.
	ASID() tlb.ASID
	// IsKernel distinguishes kernel-pmap shootdowns in instrumentation.
	IsKernel() bool
}

// Action is one queued consistency action: invalidate [Start, End) for the
// given address space, or flush everything.
type Action struct {
	Pmap     Pmap // the map the action is for (nil for synthetic actions)
	ASID     tlb.ASID
	Start    ptable.VAddr
	End      ptable.VAddr
	FlushAll bool
}

// RangeScopedPmap extends Pmap for the Section 8 restructuring proposed
// for large NUMA machines: the kernel address space is divided into pools
// mirroring the processor pools, and memory that may require shootdowns is
// not shared between pools — so a shootdown for a pooled range involves
// only the pool's processors instead of the entire machine.
type RangeScopedPmap interface {
	Pmap
	// InUseForRange reports whether the processor can hold translations
	// for any page in [start, end).
	InUseForRange(cpu int, start, end ptable.VAddr) bool
}

// inUseFor resolves the per-range in-use test, honoring pool scoping.
func inUseFor(p Pmap, cpu int, start, end ptable.VAddr) bool {
	if rs, ok := p.(RangeScopedPmap); ok {
		return rs.InUseForRange(cpu, start, end)
	}
	return p.InUse(cpu)
}

// LazyReleaser extends Pmap for ASID-tagged TLBs handled per Section 10:
// entries outlive context switches, so a pmap stays "in use" on a
// processor until its entries are explicitly flushed there. When a
// responder receives an invalidation for a space it retains but is not
// currently running, it flushes the whole space and releases it instead
// of invalidating entry by entry ("completely flush entries for any
// address space that requires an invalidation even though it is not
// currently being used").
type LazyReleaser interface {
	Pmap
	// RetainsTLBEntries reports whether deactivation leaves entries
	// cached (i.e. the Section 10 mode is enabled).
	RetainsTLBEntries() bool
	// ReleaseFrom flushes every entry for this space from the CPU's TLB
	// and removes the CPU from the in-use set.
	ReleaseFrom(ex *machine.Exec, cpu int)
}

// Pages returns the number of pages the action covers.
func (a Action) Pages() int {
	return int((a.End - a.Start + mem.PageSize - 1) / mem.PageSize)
}

// DeviceTLB is the protocol's view of a device-TLB participant (an IOMMU
// or accelerator MMU; machine.Device implements it). Devices break the
// paper's core assumption: they hold translations but take no interrupts,
// so they cannot join the IPI+spin barrier. Instead the initiator posts an
// invalidation request into the device's bounded queue (ringing its
// doorbell), continues, and later polls Completed — an ATS-style
// invalidate → wait-for-completion exchange. The watchdog ladder for a
// device that never completes is Ring (the doorbell may have been lost),
// then Reset (drain-and-reset, whose full IOTLB flush satisfies every
// outstanding request), then Quarantine (fail-stop the device and finish
// the shootdown without it — its translations are poisoned, so a missing
// acknowledgement no longer threatens consistency).
type DeviceTLB interface {
	// ID identifies the device in instrumentation.
	ID() int
	// Online reports whether the device has not been quarantined.
	Online() bool
	// PostInvalidate queues an invalidation and rings the doorbell,
	// returning the completion sequence number to poll. ok is false when
	// the device is quarantined (nothing to wait for).
	PostInvalidate(ex *machine.Exec, asid tlb.ASID, start, end ptable.VAddr, flushAll bool) (seq uint64, ok bool)
	// Ring re-rings the doorbell (first escalation rung).
	Ring(ex *machine.Exec)
	// Completed reports whether the request has been acknowledged.
	Completed(seq uint64) bool
	// Reset drains and resets the device (second rung); false when the
	// device did not respond to the reset either.
	Reset(ex *machine.Exec) bool
	// Quarantine fail-stops the device (final rung).
	Quarantine(ex *machine.Exec) bool
}

// deviceMember is one registered device participant: the device plus the
// address space it translates through. A device is shot at exactly when a
// shootdown targets its pmap.
type deviceMember struct {
	dev  DeviceTLB
	pmap Pmap
}

// Op carries one pmap operation's consistency context from Begin through
// Sync to Finish. Strategies that defer work past the pmap update (the
// postponed-interrupt and timer-flush baselines) stash what they need here.
type Op struct {
	prevIPL machine.IPL
	start   sim.Time

	// Pmap and the range are recorded by Sync for strategies that act in
	// Finish, after the pmap has been updated and unlocked.
	Pmap       Pmap
	Start, End ptable.VAddr
	Synced     bool
}

// Started returns the operation's start timestamp.
func (op *Op) Started() sim.Time { return op.start }

// Strategy is the pluggable consistency mechanism seam. The Mach shootdown
// is the paper's contribution; package baseline provides the alternatives
// discussed in Sections 3, 9, and 10 for comparison.
//
// A pmap operation brackets itself with Begin (before taking the pmap
// lock) and Finish (after releasing it), and calls Sync — with the lock
// held, before modifying the pmap — when its changes could leave stale
// entries in remote TLBs. Sync returns the number of processors involved.
type Strategy interface {
	Name() string
	Begin(ex *machine.Exec) *Op
	Sync(ex *machine.Exec, op *Op, p Pmap, start, end ptable.VAddr) int
	Finish(ex *machine.Exec, op *Op)
	// GoIdle and GoActive bracket a processor's idle periods so the
	// strategy can implement the idle-processor optimization.
	GoIdle(ex *machine.Exec)
	GoActive(ex *machine.Exec)
}

// Options tunes the shootdown algorithm. The zero value gives the paper's
// configuration: idle optimization on, an update queue sized so overflow
// only happens when a full flush is cheaper anyway, and an
// invalidate-vs-flush threshold.
type Options struct {
	// QueueSize bounds each processor's consistency-action queue;
	// overflow degrades to a full TLB flush. Default 8.
	QueueSize int
	// FlushThreshold is the page count beyond which a full buffer flush
	// is faster than individual invalidates. Default 8.
	FlushThreshold int
	// DisableIdleOptimization makes initiators interrupt and synchronize
	// with idle processors too (ablation).
	DisableIdleOptimization bool

	// WatchdogTimeout arms an initiator-side watchdog: if a responder has
	// not acknowledged within this much virtual time, the initiator
	// re-sends the IPI (it may have been dropped) and doubles the timeout
	// up to WatchdogBackoffMax. Zero (the default) disables the watchdog —
	// the paper's protocol, which trusts the interrupt hardware.
	WatchdogTimeout sim.Time
	// WatchdogMaxRetries is the number of timed-out retries before the
	// watchdog escalates to the conservative path: the straggler's action
	// queue is forced into the overflow state so its eventual response is
	// a single full TLB flush. Default 4 (when the watchdog is armed).
	WatchdogMaxRetries int
	// WatchdogBackoffMax caps the exponential backoff between retries.
	// Default 16× WatchdogTimeout.
	WatchdogBackoffMax sim.Time

	// DevCompletionTimeout bounds the initiator's wait for one device
	// completion before the device watchdog ladder engages. Defaults to
	// WatchdogTimeout when the watchdog is armed; with no watchdog the
	// initiator spins unboundedly, trusting the device like the paper
	// trusts the interrupt hardware.
	DevCompletionTimeout sim.Time
	// DevMaxRerings is how many timed-out waits are answered with a
	// doorbell re-ring before the ladder escalates to drain-and-reset
	// (and, if the reset fails or does not help, quarantine). Default 2.
	DevMaxRerings int
}

func (o Options) withDefaults() Options {
	if o.QueueSize == 0 {
		o.QueueSize = 8
	}
	if o.FlushThreshold == 0 {
		o.FlushThreshold = 8
	}
	if o.WatchdogTimeout > 0 {
		if o.WatchdogMaxRetries == 0 {
			o.WatchdogMaxRetries = 4
		}
		if o.WatchdogBackoffMax == 0 {
			o.WatchdogBackoffMax = 16 * o.WatchdogTimeout
		}
		if o.DevCompletionTimeout == 0 {
			o.DevCompletionTimeout = o.WatchdogTimeout
		}
		if o.DevMaxRerings == 0 {
			o.DevMaxRerings = 2
		}
	}
	return o
}

// Stats counts protocol events.
type Stats struct {
	Syncs              uint64 // Sync calls (shootdowns invoked)
	RemoteShootdowns   uint64 // Syncs that involved at least one other CPU
	ActionsQueued      uint64
	IPIsSent           uint64
	IPIsCoalesced      uint64 // send skipped: interrupt already pending
	IdleSkipped        uint64 // queue-only for idle processors
	Responses          uint64 // responder passes
	QueueOverflows     uint64
	FullFlushes        uint64
	EntriesInvalidated uint64
	// LazyReleases counts whole-space flushes of retained (ASID-tagged)
	// address spaces on processors no longer running them (Section 10).
	LazyReleases uint64
	// WatchdogTimeouts counts responder-ack waits that exceeded the
	// watchdog timeout; WatchdogRetries the IPIs re-sent because of them;
	// WatchdogEscalations the stragglers forced onto the full-flush path.
	WatchdogTimeouts    uint64
	WatchdogRetries     uint64
	WatchdogEscalations uint64
	// OfflineSkipped counts processors excluded from a shootdown up front
	// because they were offline when the initiator scanned membership.
	OfflineSkipped uint64
	// WatchdogMembershipRescues counts waits abandoned because the
	// membership re-check found the responder fail-stopped (or failed and
	// revived into a fresh incarnation) — the watchdog's final escalation.
	WatchdogMembershipRescues uint64

	// Device-participant counters. All carry omitempty so a deviceless
	// run's wire forms (black boxes, snapshots, corpus reproducers) are
	// byte-identical to the pre-device format.
	//
	// DevShootdowns counts Syncs that posted to at least one device;
	// DevInvalsPosted the invalidation requests posted.
	DevShootdowns   uint64 `json:",omitempty"`
	DevInvalsPosted uint64 `json:",omitempty"`
	// DevCompletionTimeouts counts completion waits that exceeded the
	// device watchdog timeout; DevRerings, DevResets, and DevQuarantines
	// count each escalation rung taken.
	DevCompletionTimeouts uint64 `json:",omitempty"`
	DevRerings            uint64 `json:",omitempty"`
	DevResets             uint64 `json:",omitempty"`
	DevQuarantines        uint64 `json:",omitempty"`
	// DevOfflineSkipped counts devices excluded from a shootdown up front
	// because they were already quarantined at membership-scan time.
	DevOfflineSkipped uint64 `json:",omitempty"`
}

// Shootdown is the Mach shootdown algorithm state: the active and idle
// processor sets, per-processor action queues with their locks, and the
// action-needed flags (Section 4's "small collection of data structures").
type Shootdown struct {
	m    *machine.Machine //snap:derived wiring to the machine, re-established when the world is rebuilt for replay
	opts Options          //snap:derived configuration, reapplied from the experiment config on replay

	active       []bool
	idle         []bool
	actionNeeded []bool
	queues       [][]Action
	overflow     []bool
	actionLocks  []machine.SpinLock

	// memberLock serializes membership-sensitive transitions: an
	// initiator's membership scan (and the watchdog's membership
	// re-check) against a revived processor's protocol-state reset. It
	// ranks between the pmap lock and the action locks in the documented
	// lock order, so an initiator holding the pmap lock may take it and
	// then the action locks.
	memberLock machine.SpinLock

	// devices lists the registered device participants (serialized as
	// the Devices section of Snap).
	devices []deviceMember

	kernelPmap Pmap               //snap:derived wiring to the kernel pmap, re-established at construction
	userPmapOn func(cpu int) Pmap //snap:derived wiring installed by the kernel at construction; pmap active on a CPU, or nil

	// Trace, when set, receives initiator and responder records.
	//snap:transient observation attachment, reattached by the session
	Trace *xpr.Buffer

	// Span, when set, receives per-phase shootdown spans and instants on
	// the session tracer (nil-safe; recording charges no virtual time).
	//snap:transient observation attachment, reattached by the session
	Span *trace.Tracer

	// Prof, when set, feeds the causal reconstructor: typed hooks at each
	// protocol step let the profiler link every shootdown into a DAG and
	// compute its critical path (nil-safe; charges no virtual time).
	//snap:transient observation attachment, reattached by the session
	Prof *profile.Profiler

	// Flight, when set, is tripped on watchdog escalation — the moment a
	// responder has missed every retry and the initiator falls back to the
	// full-flush path, the recorder dumps a black box with the protocol
	// state that led there (nil-safe; charges no virtual time).
	//snap:transient observation attachment, reattached by the session
	Flight *trace.Recorder

	// Host, when set, receives host allocation-cost tallies for the
	// per-sync transient slices (wait/send lists, device waiters).
	// Counting is plain integer arithmetic on the host side; it charges
	// no virtual time and consumes no simulation randomness.
	//snap:transient host-cost accounting, reattached by the session; never serialized
	Host *hostprof.Counters

	stats Stats
	// recoveryUS records, for every wait the watchdog had to rescue, the
	// virtual microseconds from the first timeout to quiescence.
	recoveryUS []float64
	// inFlight counts initiators currently between Begin and Finish — the
	// paper's race window, during which a pmap update and the responders'
	// TLB flushes must be ordered. The DPOR-lite explorer treats scheduler
	// tie decisions inside this window as racy (DESIGN.md §14).
	inFlight int
}

var _ Strategy = (*Shootdown)(nil)

// New creates the shootdown state for machine m and installs the responder
// as the machine's IPI handler. Processors start active and not idle; the
// kernel marks them idle via GoIdle.
func New(m *machine.Machine, opts Options) *Shootdown {
	n := m.NumCPUs()
	s := &Shootdown{
		m:            m,
		opts:         opts.withDefaults(),
		active:       make([]bool, n),
		idle:         make([]bool, n),
		actionNeeded: make([]bool, n),
		queues:       make([][]Action, n),
		overflow:     make([]bool, n),
		actionLocks:  make([]machine.SpinLock, n),
	}
	for i := range s.active {
		s.active[i] = true
		s.actionLocks[i] = machine.SpinLock{Name: fmt.Sprintf("action%d", i), MinIPL: machine.IPLHigh}
	}
	s.memberLock = machine.SpinLock{Name: "member", MinIPL: machine.IPLHigh}
	m.SetHandler(machine.VecIPI, func(ex *machine.Exec, _ machine.Vector) {
		s.respond(ex)
	})
	return s
}

// Name implements Strategy.
func (s *Shootdown) Name() string { return "mach-shootdown" }

// Stats returns a snapshot of the protocol counters.
func (s *Shootdown) Stats() Stats { return s.stats }

// WatchdogRecoveryUS returns the recovery latency, in virtual microseconds,
// of every responder wait the watchdog rescued (first timeout → quiescence).
func (s *Shootdown) WatchdogRecoveryUS() []float64 {
	out := make([]float64, len(s.recoveryUS))
	copy(out, s.recoveryUS)
	return out
}

// Options returns the effective options.
func (s *Shootdown) Options() Options { return s.opts }

// SetKernelPmap registers the kernel pmap (responders spin on its lock).
func (s *Shootdown) SetKernelPmap(p Pmap) { s.kernelPmap = p }

// SetUserPmapFn registers the resolver for the user pmap active on a CPU.
func (s *Shootdown) SetUserPmapFn(f func(cpu int) Pmap) { s.userPmapOn = f }

// RegisterDevice adds a device-TLB participant translating through pmap p:
// every subsequent shootdown targeting p posts an invalidation to the
// device and waits for its completion alongside the CPU barrier.
func (s *Shootdown) RegisterDevice(d DeviceTLB, p Pmap) {
	s.devices = append(s.devices, deviceMember{dev: d, pmap: p})
}

// Active reports whether a CPU is in the active set (tests/diagnostics).
func (s *Shootdown) Active(cpu int) bool { return s.active[cpu] }

// Idle reports whether a CPU is in the idle set.
func (s *Shootdown) Idle(cpu int) bool { return s.idle[cpu] }

// ActionNeeded reports whether a CPU has unprocessed consistency actions.
func (s *Shootdown) ActionNeeded(cpu int) bool { return s.actionNeeded[cpu] }

// ActionSnap is one queued consistency action in wire form.
type ActionSnap struct {
	ASID     uint16 `json:"asid,omitempty"`
	Start    uint32 `json:"start"`
	End      uint32 `json:"end"`
	FlushAll bool   `json:"flush_all,omitempty"`
	Kernel   bool   `json:"kernel,omitempty"`
}

// CPUSnap is one processor's protocol-side state in wire form, for the
// flight recorder's black boxes (DESIGN.md §13) and full-state snapshots
// (§14). QueueLen predates the deep Queue capture and is kept for black-
// box consumers.
type CPUSnap struct {
	CPU          int          `json:"cpu"`
	Active       bool         `json:"active"`
	Idle         bool         `json:"idle"`
	ActionNeeded bool         `json:"action_needed"`
	QueueLen     int          `json:"queue_len"`
	Overflow     bool         `json:"overflow"`
	Queue        []ActionSnap `json:"queue,omitempty"`
	LockHeld     bool         `json:"lock_held,omitempty"`
	LockOwner    int          `json:"lock_owner,omitempty"`
}

// DevMemberSnap is one registered device participant in wire form. The
// device's own protocol state (queue, watermark, IOTLB) is serialized by
// the machine layer; this records the membership view.
type DevMemberSnap struct {
	Dev    int  `json:"dev"`
	Online bool `json:"online"`
	Kernel bool `json:"kernel,omitempty"`
}

// Snap is the whole protocol state in wire form: the Section 4 data
// structures per CPU plus the cumulative counters, the in-flight
// initiator count, and the watchdog recovery-latency samples.
type Snap struct {
	Stats      Stats     `json:"stats"`
	InFlight   int       `json:"in_flight,omitempty"`
	MemberHeld bool      `json:"member_lock_held,omitempty"`
	CPUs       []CPUSnap `json:"cpus"`
	// Devices lists the registered device participants in registration
	// order; omitted on the CPU-only configurations every pre-device wire
	// form describes.
	Devices []DevMemberSnap `json:"devices,omitempty"`
	// RecoveryUS carries the watchdog recovery-latency samples, so a
	// restored world reports the same recovery percentiles as the
	// original (omitted while no rescue has happened).
	RecoveryUS []float64 `json:"recovery_us,omitempty"`
}

// Snapshot captures the active/idle sets, action queues (contents, not
// just depth), lock holders, and counters. Output is deterministic: CPUs
// in id order, queues in enqueue order.
func (s *Shootdown) Snapshot() Snap {
	snap := Snap{Stats: s.stats, InFlight: s.inFlight, MemberHeld: s.memberLock.Held()}
	snap.RecoveryUS = append(snap.RecoveryUS, s.recoveryUS...)
	for cpu := range s.active {
		cs := CPUSnap{
			CPU:          cpu,
			Active:       s.active[cpu],
			Idle:         s.idle[cpu],
			ActionNeeded: s.actionNeeded[cpu],
			QueueLen:     len(s.queues[cpu]),
			Overflow:     s.overflow[cpu],
		}
		for _, a := range s.queues[cpu] {
			cs.Queue = append(cs.Queue, ActionSnap{
				ASID: uint16(a.ASID), Start: uint32(a.Start), End: uint32(a.End),
				FlushAll: a.FlushAll, Kernel: a.Pmap != nil && a.Pmap.IsKernel(),
			})
		}
		if owner, _, held := s.actionLocks[cpu].Owner(); held {
			cs.LockHeld, cs.LockOwner = true, owner
		}
		snap.CPUs = append(snap.CPUs, cs)
	}
	for _, dm := range s.devices {
		snap.Devices = append(snap.Devices, DevMemberSnap{
			Dev: dm.dev.ID(), Online: dm.dev.Online(), Kernel: dm.pmap.IsKernel(),
		})
	}
	return snap
}

// RaceWindowOpen reports whether a scheduling decision taken right now is
// inside a shootdown race window: an initiator is mid-protocol (between
// Begin and Finish — IPI delivery, pmap-lock acquisition, and barrier exit
// are all in play), or some processor still has unprocessed consistency
// actions queued (the window between a pmap update and the last
// responder's flush). The schedule explorer uses this to classify which
// tie decisions are worth forking.
func (s *Shootdown) RaceWindowOpen() bool {
	if s.inFlight > 0 {
		return true
	}
	for _, need := range s.actionNeeded {
		if need {
			return true
		}
	}
	return false
}

// Begin starts an initiator-side critical section: disable all interrupts
// and leave the active set, so a concurrent initiator shooting at us does
// not wait for us (the crossed-shootdown deadlock avoidance). Call before
// taking the pmap lock.
func (s *Shootdown) Begin(ex *machine.Exec) *Op {
	prev := ex.DisableAll()
	s.active[ex.CPUID()] = false
	s.inFlight++
	return &Op{prevIPL: prev, start: ex.Now()}
}

// Finish ends the initiator-side critical section after the pmap has been
// unlocked: synchronize any device participants, rejoin the active set,
// and restore the interrupt state, which delivers — and responds to — any
// shootdown interrupts that arrived while we were initiating.
//
// Device invalidations are posted here, after the pmap update, not in
// Sync before it. The ordering is deliberate and differs from the CPU
// barrier: CPU responders stall until the update is done, so a pre-update
// queue-and-interrupt cannot re-cache a stale entry; a device has no such
// interlock — it services its queue whenever it likes — so an invalidation
// completed before the PTEs changed could be followed by a device walk
// that re-caches the dying mapping, stale forever. Clearing the PTEs
// first and then invalidating (the ATS ordering) closes that window. The
// race window stays open (inFlight is still held) until every attached
// device completes or is escalated away.
func (s *Shootdown) Finish(ex *machine.Exec, op *Op) {
	if op.Synced && len(s.devices) > 0 {
		s.syncDevices(ex, op)
	}
	s.active[ex.CPUID()] = true
	s.inFlight--
	ex.RestoreIPL(op.prevIPL)
}

// syncDevices posts the finished operation's invalidation to every device
// attached to its pmap and collects the completion messages, escalating
// through the device watchdog ladder on the ones that never answer.
func (s *Shootdown) syncDevices(ex *machine.Exec, op *Op) {
	me := ex.CPUID()
	var devWaiters []devWaiter
	for _, dm := range s.devices {
		if dm.pmap != op.Pmap {
			continue
		}
		if !dm.dev.Online() {
			// A quarantined device is excluded up front — like an offline
			// CPU, it translates nothing.
			s.stats.DevOfflineSkipped++
			continue
		}
		if seq, ok := dm.dev.PostInvalidate(ex, op.Pmap.ASID(), op.Start.Page(), op.End, false); ok {
			s.stats.DevInvalsPosted++
			devWaiters = append(devWaiters, devWaiter{dev: dm.dev, seq: seq})
		}
	}
	if len(devWaiters) == 0 {
		return
	}
	s.Host.Add(hostprof.SiteCoreSync, 1, int64(len(devWaiters))*16)
	s.stats.DevShootdowns++
	s.Span.Begin(int64(ex.Now()), me, trace.CatShootdown, "shootdown-dev-wait", int64(len(devWaiters)), 0)
	s.Prof.Push(int64(ex.Now()), me, profile.PhaseSpinBarrier)
	for _, dw := range devWaiters {
		s.waitForDevice(ex, dw)
	}
	s.Prof.Pop(int64(ex.Now()), me, profile.PhaseSpinBarrier)
	s.Span.End(int64(ex.Now()), me, trace.CatShootdown, "shootdown-dev-wait")
}

// Sync is the initiator algorithm (phases 1 and 3's precondition). It must
// be called between Begin and Finish with the pmap lock held, before the
// pmap is modified. On return, every processor that could hold a stale
// entry for [start, end) is either spinning inactive, idle with the
// invalidation queued, or no longer using the pmap — so the caller may
// safely change the pmap. It returns the number of processors involved.
func (s *Shootdown) Sync(ex *machine.Exec, op *Op, p Pmap, start, end ptable.VAddr) int {
	me := ex.CPUID()
	m := s.m
	s.stats.Syncs++
	op.Pmap, op.Start, op.End, op.Synced = p, start, end, true
	t0 := ex.Now()
	kernel := int64(0)
	if p.IsKernel() {
		kernel = 1
	}
	s.Span.Begin(int64(t0), me, trace.CatShootdown, "shootdown-sync",
		int64(Action{Start: start.Page(), End: end}.Pages()), kernel)
	s.Prof.ShootBegin(int64(t0), me, p.IsKernel(), Action{Start: start.Page(), End: end}.Pages())

	if inUseFor(p, me, start, end) {
		s.invalidateLocal(ex, p.ASID(), start, end)
	}

	action := Action{Pmap: p, ASID: p.ASID(), Start: start.Page(), End: end}
	var sendList []int
	var waitList []waiter
	queued := 0
	// The membership scan runs under the member lock, so a processor
	// mid-revive (resetting its protocol state under the same lock) is
	// seen either wholly offline or wholly reset — never half-way.
	mprev := s.memberLock.Lock(ex)
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		if cpu == me || !inUseFor(p, cpu, start, end) {
			continue
		}
		if !m.CPU(cpu).Online() {
			// A fail-stopped processor translates nothing and loses its
			// TLB before rejoining (full flush on online), so it is
			// excluded up front — the membership analogue of the paper's
			// idle-processor optimization.
			s.stats.OfflineSkipped++
			continue
		}
		lprev := s.actionLocks[cpu].Lock(ex)
		s.enqueue(ex, cpu, action)
		s.actionNeeded[cpu] = true
		s.actionLocks[cpu].Unlock(ex, lprev)
		queued++
		if !s.opts.DisableIdleOptimization && s.idle[cpu] {
			// Idle processors get the action queued but no interrupt;
			// they drain the queue before becoming active.
			s.stats.IdleSkipped++
			continue
		}
		waitList = append(waitList, waiter{cpu: cpu, inc: m.CPU(cpu).Incarnation()})
		if m.CPU(cpu).Pending(machine.VecIPI) {
			// An interrupt is already on its way; one responder pass
			// services every shootdown in progress.
			s.stats.IPIsCoalesced++
			continue
		}
		sendList = append(sendList, cpu)
	}
	s.memberLock.Unlock(ex, mprev)
	// Transient per-sync slices (waiters at 16 B, send list at 8 B each);
	// amortized append growth makes this an estimate.
	s.Host.Add(hostprof.SiteCoreSync, 1, int64(len(waitList))*16+int64(len(sendList))*8)

	if len(waitList) > 0 {
		// Register the responder set with the profiler before any IPI goes
		// out, so the machine's post hooks can match them to this instance.
		wcpus := make([]int, len(waitList))
		for i, w := range waitList {
			wcpus[i] = w.cpu
		}
		s.Prof.ShootExpect(int64(ex.Now()), me, wcpus)
	}
	if len(sendList) > 0 {
		ex.SendIPI(sendList)
		s.stats.IPIsSent += uint64(len(sendList))
	}
	if len(waitList) > 0 {
		s.Span.Begin(int64(ex.Now()), me, trace.CatShootdown, "shootdown-wait", int64(len(waitList)), 0)
		s.Prof.ShootWait(int64(ex.Now()), me)
		s.Prof.Push(int64(ex.Now()), me, profile.PhaseSpinBarrier)
	}
	for _, w := range waitList {
		// A responder that stops using the pmap has flushed its entries
		// for it; no need to synchronize with it (refinement 1).
		s.waitForResponder(ex, p, w, start, end)
	}
	if len(waitList) > 0 {
		s.Prof.Pop(int64(ex.Now()), me, profile.PhaseSpinBarrier)
		s.Span.End(int64(ex.Now()), me, trace.CatShootdown, "shootdown-wait")
	}
	if queued > 0 {
		s.stats.RemoteShootdowns++
	}

	// The instrumented "number of processors being shot at" counts the
	// processors that were interrupted and synchronized with — idle
	// processors get the action queued but are not shot at (Section 4).
	shot := len(waitList)
	if s.Trace != nil {
		pages := Action{Start: start.Page(), End: end}.Pages()
		s.Trace.LogInitiator(ex.Now(), me, p.IsKernel(), pages, shot, ex.Now()-t0)
	}
	s.Prof.ShootEnd(int64(ex.Now()), me)
	s.Span.End(int64(ex.Now()), me, trace.CatShootdown, "shootdown-sync")
	return shot
}

// waiter is one waitList entry: the responder's CPU number plus the
// incarnation it was scanned at, so the wait can tell a fail/revive cycle
// apart from a slow acknowledgment.
type waiter struct {
	cpu int
	inc uint64
}

// waitForResponder implements the phase-1 wait on one processor: spin until
// it acknowledges (leaves the active set) or stops using the pmap. With no
// watchdog configured this is the paper's unbounded spin, which trusts the
// interrupt hardware (and assumes processors do not fail; fail-stop
// tolerance requires the watchdog). With a watchdog armed, a timed-out
// spin escalates in stages: re-send the IPI (it may have been dropped)
// under exponential backoff; after WatchdogMaxRetries force the
// straggler's queue into the overflow state so its eventual response is a
// single conservative full flush; and on every timeout re-check
// membership — a responder that fail-stopped will never acknowledge, and
// one that failed and revived lost its TLB and its queued actions to the
// online reset, so in either case there is nothing left to wait for. That
// membership rescue is the only way the wait is abandoned: Sync's contract
// is that the pmap may be modified only once the responder cannot use a
// stale entry, and a dead (or cold-rebooted) TLB satisfies it.
func (s *Shootdown) waitForResponder(ex *machine.Exec, p Pmap, w waiter, start, end ptable.VAddr) {
	cpu := w.cpu
	cond := func() bool { return s.active[cpu] && inUseFor(p, cpu, start, end) }
	if s.opts.WatchdogTimeout <= 0 {
		ex.SpinWhile(cond)
		return
	}
	me := ex.CPUID()
	timeout := s.opts.WatchdogTimeout
	var firstTimeout sim.Time
	escalated := false
	for retry := 0; !ex.SpinWhileFor(cond, timeout); retry++ {
		s.stats.WatchdogTimeouts++
		if firstTimeout == 0 {
			firstTimeout = ex.Now()
		}
		s.Span.Instant(int64(ex.Now()), me, trace.CatShootdown, "watchdog-timeout", int64(cpu), int64(retry))
		if s.memberRecheck(ex, w) {
			break
		}
		if !escalated && retry >= s.opts.WatchdogMaxRetries {
			escalated = true
			s.stats.WatchdogEscalations++
			s.Span.Instant(int64(ex.Now()), me, trace.CatShootdown, "watchdog-escalate", int64(cpu), 0)
			s.Flight.Trip(int64(ex.Now()), "watchdog",
				fmt.Sprintf("cpu%d escalated to full flush after %d retries waiting on cpu%d", me, retry, cpu))
			lprev := s.actionLocks[cpu].Lock(ex)
			s.overflow[cpu] = true
			s.queues[cpu] = s.queues[cpu][:0]
			s.actionLocks[cpu].Unlock(ex, lprev)
		}
		if !s.m.CPU(cpu).Pending(machine.VecIPI) {
			s.stats.WatchdogRetries++
			s.Span.Instant(int64(ex.Now()), me, trace.CatShootdown, "watchdog-retry", int64(cpu), int64(retry))
			ex.SendIPI([]int{cpu})
			s.stats.IPIsSent++
		}
		if timeout < s.opts.WatchdogBackoffMax {
			timeout *= 2
			if timeout > s.opts.WatchdogBackoffMax {
				timeout = s.opts.WatchdogBackoffMax
			}
		}
	}
	if firstTimeout != 0 {
		s.recoveryUS = append(s.recoveryUS, float64(ex.Now()-firstTimeout)/1000)
	}
}

// devWaiter is one outstanding device completion: the device plus the
// sequence number its invalidation was posted at.
type devWaiter struct {
	dev DeviceTLB
	seq uint64
}

// waitForDevice waits for one device's completion message. With no
// watchdog configured it is an unbounded spin trusting the device, the
// analogue of the paper's trust in the interrupt hardware. With a
// watchdog armed, a timed-out wait climbs the device escalation ladder:
// re-ring the doorbell (the initial ring may have been dropped and the
// device is merely unaware of the work), up to DevMaxRerings times under
// exponential backoff; then drain-and-reset the device (its full IOTLB
// flush satisfies every outstanding invalidation); and finally quarantine
// it — fail-stop the device, evict it from membership, and finish the
// shootdown without its acknowledgement, which is safe because a
// quarantined device's translations are poisoned and grant nothing. Each
// rescued wait's recovery latency (first timeout → quiescence) is
// recorded alongside the CPU watchdog's samples.
func (s *Shootdown) waitForDevice(ex *machine.Exec, w devWaiter) {
	d := w.dev
	cond := func() bool { return d.Online() && !d.Completed(w.seq) }
	if s.opts.WatchdogTimeout <= 0 {
		ex.SpinWhile(cond)
		return
	}
	me := ex.CPUID()
	timeout := s.opts.DevCompletionTimeout
	var firstTimeout sim.Time
	resetTried := false
	for retry := 0; !ex.SpinWhileFor(cond, timeout); retry++ {
		s.stats.DevCompletionTimeouts++
		if firstTimeout == 0 {
			firstTimeout = ex.Now()
		}
		s.Span.Instant(int64(ex.Now()), me, trace.CatShootdown, "dev-watchdog-timeout", int64(d.ID()), int64(retry))
		if !d.Online() {
			break // quarantined by a concurrent initiator; nothing to wait for
		}
		switch {
		case retry < s.opts.DevMaxRerings:
			s.stats.DevRerings++
			s.Span.Instant(int64(ex.Now()), me, trace.CatShootdown, "dev-watchdog-rering", int64(d.ID()), int64(retry))
			d.Ring(ex)
		case !resetTried:
			resetTried = true
			s.stats.DevResets++
			s.Span.Instant(int64(ex.Now()), me, trace.CatShootdown, "dev-watchdog-reset", int64(d.ID()), int64(retry))
			// On success the reset's flush completes every outstanding
			// request and the next spin exits; on failure (a wedged
			// device ignores reset too) the next timeout quarantines.
			d.Reset(ex)
		default:
			s.stats.DevQuarantines++
			s.Span.Instant(int64(ex.Now()), me, trace.CatShootdown, "dev-watchdog-quarantine", int64(d.ID()), int64(retry))
			// Quarantine before tripping so the black box's devices
			// section captures the post-escalation state.
			d.Quarantine(ex)
			s.Flight.Trip(int64(ex.Now()), "watchdog",
				fmt.Sprintf("cpu%d quarantined device%d after %d retries awaiting completion %d", me, d.ID(), retry, w.seq))
		}
		if timeout < s.opts.WatchdogBackoffMax {
			timeout *= 2
			if timeout > s.opts.WatchdogBackoffMax {
				timeout = s.opts.WatchdogBackoffMax
			}
		}
	}
	if firstTimeout != 0 {
		s.recoveryUS = append(s.recoveryUS, float64(ex.Now()-firstTimeout)/1000)
	}
}

// memberRecheck is the watchdog's membership escalation: under the member
// lock (serializing against a concurrent online reset), test whether the
// awaited responder is still alive in the incarnation it was scanned at.
// If not, the wait is over — an offline processor cannot touch the pmap,
// and a revived one came back with an empty TLB and a reset action queue.
func (s *Shootdown) memberRecheck(ex *machine.Exec, w waiter) (rescued bool) {
	mprev := s.memberLock.Lock(ex)
	alive := s.m.CPU(w.cpu).Online() && s.m.CPU(w.cpu).Incarnation() == w.inc
	s.memberLock.Unlock(ex, mprev)
	if alive {
		return false
	}
	s.stats.WatchdogMembershipRescues++
	s.Span.Instant(int64(ex.Now()), ex.CPUID(), trace.CatShootdown, "watchdog-member-rescue", int64(w.cpu), int64(w.inc))
	return true
}

// enqueue adds an action to a CPU's queue; the caller holds the action
// lock. Overflow degrades to a full flush (detail 2 in Section 4).
func (s *Shootdown) enqueue(ex *machine.Exec, cpu int, a Action) {
	ex.ChargeInstr()
	s.stats.ActionsQueued++
	if s.overflow[cpu] {
		return // already flushing everything
	}
	if len(s.queues[cpu]) >= s.opts.QueueSize {
		s.overflow[cpu] = true
		s.queues[cpu] = s.queues[cpu][:0]
		s.stats.QueueOverflows++
		return
	}
	s.queues[cpu] = append(s.queues[cpu], a)
}

// respond is the responder algorithm (phases 2 and 4), run from the IPI
// handler and from GoActive. Further shootdown interrupts are already
// masked (the handler auto-masks; GoActive disables explicitly), so one
// pass services all shootdowns in progress.
func (s *Shootdown) respond(ex *machine.Exec) {
	me := ex.CPUID()
	t0 := ex.Now()
	s.Span.Begin(int64(t0), me, trace.CatShootdown, "shootdown-respond", 0, 0)
	prev := ex.DisableAll()
	// Fault injection: a slow or briefly wedged responder stalls before
	// doing any work, giving the initiator's watchdog something to time out
	// against. Interrupts are already masked, matching the failure mode of
	// a handler stuck in earlier non-preemptible work.
	if d := s.m.Faults().ResponderDelay(me); d > 0 {
		s.Span.Instant(int64(ex.Now()), me, trace.CatShootdown, "responder-fault-stall", int64(d), 0)
		ex.Stall(d)
	}
	for s.actionNeeded[me] {
		s.stats.Responses++
		// Phase 2: acknowledge, then stall until no initiator is mid-
		// update on a pmap this processor can translate through. The
		// paper's pseudo-code joins the two lock tests with &&, but the
		// responder must stall while EITHER pmap is being updated —
		// otherwise it could reload a stale entry from (or write R/M
		// bits into) the half-updated map; we implement the OR. The test
		// is UpdateInProgress, not Locked: a fail-stopped initiator's
		// lock will never be released, and its frozen half-update is
		// processed like any other — the queued (or escalated-to-flush)
		// invalidations over-invalidate, which is always safe.
		s.active[me] = false
		s.Prof.RespondAck(int64(ex.Now()), me)
		s.Span.Begin(int64(ex.Now()), me, trace.CatShootdown, "shootdown-stall", 0, 0)
		s.Prof.Push(int64(ex.Now()), me, profile.PhaseSpinBarrier)
		ex.SpinWhile(func() bool {
			if s.kernelPmap != nil && s.kernelPmap.UpdateInProgress() {
				return true
			}
			if s.userPmapOn != nil {
				if up := s.userPmapOn(me); up != nil && up.UpdateInProgress() {
					return true
				}
			}
			return false
		})
		s.Prof.Pop(int64(ex.Now()), me, profile.PhaseSpinBarrier)
		s.Span.End(int64(ex.Now()), me, trace.CatShootdown, "shootdown-stall")
		// Phase 4: the updates are done; invalidate and rejoin.
		lprev := s.actionLocks[me].Lock(ex)
		s.processActions(ex, me)
		s.actionNeeded[me] = false
		s.actionLocks[me].Unlock(ex, lprev)
		s.active[me] = true
	}
	ex.RestoreIPL(prev)
	if s.Trace != nil {
		s.Trace.LogResponder(ex.Now(), me, ex.Now()-t0)
	}
	s.Prof.RespondDone(int64(ex.Now()), me)
	s.Span.End(int64(ex.Now()), me, trace.CatShootdown, "shootdown-respond")
}

// processActions performs the queued invalidations for cpu; the caller
// holds the action lock. Beyond the flush threshold (or on overflow) a
// whole-buffer flush is faster than individual invalidates (detail 1).
func (s *Shootdown) processActions(ex *machine.Exec, cpu int) {
	defer func() {
		s.queues[cpu] = s.queues[cpu][:0]
		s.overflow[cpu] = false
	}()
	if s.overflow[cpu] {
		s.flush(ex, tlb.ASIDNone)
		return
	}
	total := 0
	sharedASID := tlb.ASIDNone
	uniformASID := true
	for i, a := range s.queues[cpu] {
		if a.FlushAll {
			total = s.opts.FlushThreshold + 1
		} else {
			total += a.Pages()
		}
		if i == 0 {
			sharedASID = a.ASID
		} else if a.ASID != sharedASID {
			uniformASID = false
		}
	}
	if total > s.opts.FlushThreshold {
		// When every queued action targets one address space, a tagged
		// TLB can flush just that space; otherwise flush everything.
		if uniformASID {
			s.flush(ex, sharedASID)
		} else {
			s.flush(ex, tlb.ASIDNone)
		}
		return
	}
	for _, a := range s.queues[cpu] {
		// Section 10 (tagged TLBs): a space we retain entries for but are
		// not currently running gets flushed wholesale and released.
		if lr, ok := a.Pmap.(LazyReleaser); ok && lr.RetainsTLBEntries() {
			if s.userPmapOn == nil || s.userPmapOn(cpu) != a.Pmap {
				lr.ReleaseFrom(ex, cpu)
				s.stats.LazyReleases++
				continue
			}
		}
		ex.InvalidateTLBEntries(a.ASID, a.Start, a.End)
		s.stats.EntriesInvalidated += uint64(a.Pages())
	}
}

// invalidateLocal removes the initiator's own entries for the range,
// choosing between individual invalidates and a full flush.
func (s *Shootdown) invalidateLocal(ex *machine.Exec, asid tlb.ASID, start, end ptable.VAddr) {
	pages := Action{Start: start.Page(), End: end}.Pages()
	if pages > s.opts.FlushThreshold {
		s.flush(ex, asid)
		return
	}
	ex.InvalidateTLBEntries(asid, start, end)
	s.stats.EntriesInvalidated += uint64(pages)
}

// flush empties the TLB — per address space on tagged hardware when the
// flush is for a single space, otherwise entirely.
func (s *Shootdown) flush(ex *machine.Exec, asid tlb.ASID) {
	s.stats.FullFlushes++
	if s.m.Options().TLB.Tagged && asid != tlb.ASIDNone {
		ex.FlushTLBASID(asid)
		return
	}
	ex.FlushTLB()
}

// OnCPUOnline resets the protocol state of a processor rejoining the
// machine, running on the revived CPU itself before it executes anything
// else. Whatever was queued for (or half-processed by) its previous life
// is void: the hardware flushed the TLB on online, so there are no stale
// entries left to invalidate. The reset runs under the member lock so an
// initiator's membership scan never observes the rejoining processor
// half-reset, and under the action lock against an initiator that already
// saw us online and is enqueueing.
func (s *Shootdown) OnCPUOnline(ex *machine.Exec) {
	me := ex.CPUID()
	mprev := s.memberLock.Lock(ex)
	lprev := s.actionLocks[me].Lock(ex)
	s.queues[me] = s.queues[me][:0]
	s.overflow[me] = false
	s.actionNeeded[me] = false
	s.actionLocks[me].Unlock(ex, lprev)
	s.idle[me] = false
	s.active[me] = true
	s.memberLock.Unlock(ex, mprev)
	s.Span.Instant(int64(ex.Now()), me, trace.CatShootdown, "shootdown-online-reset", int64(ex.CPU().Incarnation()), 0)
}

// GoIdle adds the processor to the idle set. The idle loop must keep
// interrupts enabled so late-arriving shootdown interrupts are serviced.
func (s *Shootdown) GoIdle(ex *machine.Exec) {
	s.idle[ex.CPUID()] = true
}

// GoActive removes the processor from the idle set, first draining any
// consistency actions queued while it was idle — an idle processor must
// not start translating through stale entries.
func (s *Shootdown) GoActive(ex *machine.Exec) {
	me := ex.CPUID()
	s.idle[me] = false
	if s.actionNeeded[me] {
		s.respond(ex)
	}
}
