package trace

import (
	"strconv"
	"strings"
	"testing"

	"shootdown/internal/stats"
)

func TestMetricSetText(t *testing.T) {
	ms := NewMetricSet()
	ms.Counter("shootdown_syncs_total", "Shootdowns initiated.", 42, nil)
	ms.Gauge("bus_utilization_ratio", "Bus busy fraction.", 0.25, nil)
	h := stats.NewHistogram(1, 1000, 2)
	h.ObserveAll(2, 30, 400)
	ms.Histogram("shootdown_initiator_microseconds", "Initiator latency.",
		h, map[string]string{"pmap": "kernel"})
	out := ms.String()

	wants := []string{
		"# HELP shootdown_syncs_total Shootdowns initiated.",
		"# TYPE shootdown_syncs_total counter",
		"shootdown_syncs_total 42",
		"# TYPE bus_utilization_ratio gauge",
		"bus_utilization_ratio 0.25",
		"# TYPE shootdown_initiator_microseconds histogram",
		`shootdown_initiator_microseconds_bucket{pmap="kernel",le="+Inf"} 3`,
		`shootdown_initiator_microseconds_sum{pmap="kernel"} 432`,
		`shootdown_initiator_microseconds_count{pmap="kernel"} 3`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricSetHelpOncePerName(t *testing.T) {
	ms := NewMetricSet()
	ms.Counter("x_total", "X.", 1, map[string]string{"k": "a"})
	ms.Counter("x_total", "X.", 2, map[string]string{"k": "b"})
	out := ms.String()
	if got := strings.Count(out, "# HELP x_total"); got != 1 {
		t.Fatalf("HELP emitted %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `x_total{k="a"} 1`) || !strings.Contains(out, `x_total{k="b"} 2`) {
		t.Fatalf("labeled samples missing:\n%s", out)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	ms := NewMetricSet()
	h := stats.NewHistogram(10, 100, 1)
	h.ObserveAll(5, 50, 5000) // below range, in range, above range
	ms.Histogram("lat", "L.", h, nil)
	out := ms.String()
	prev := uint64(0)
	var buckets int
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(ln, "lat_bucket") {
			continue
		}
		buckets++
		v, err := strconv.ParseUint(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", ln, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", ln, prev)
		}
		prev = v
	}
	if buckets == 0 {
		t.Fatalf("no bucket lines:\n%s", out)
	}
	if prev != 3 {
		t.Fatalf("+Inf bucket = %d, want 3 (nothing may be lost)", prev)
	}
}
