package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the JSON object format consumed by
// chrome://tracing and Perfetto (ui.perfetto.dev). Events land on two
// process rows: pid 0 ("cpus") holds the per-CPU timelines every
// hardware/protocol/kernel event is keyed to, and pid 1 ("procs") holds one
// timeline per sim proc for the engine's scheduling events. Timestamps are
// virtual microseconds.
const (
	chromePidCPUs  = 0
	chromePidProcs = 1
	// chromeTidGlobal hosts events bound to no CPU (run markers, etc.).
	chromeTidGlobal = 9999
)

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained events as Chrome trace-event JSON.
// The output is one self-contained object: metadata naming the process and
// thread rows, then every event in arrival order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := func(first *bool, ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !*first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		*first = false
		_, err = bw.Write(b)
		return err
	}

	first := true
	for _, ev := range t.metadataEvents() {
		if err := enc(&first, ev); err != nil {
			return err
		}
	}
	for _, ev := range t.Events() {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat.String(),
			Ph:   ev.Ph.String(),
			TS:   float64(ev.TS) / 1e3, // ns -> µs
		}
		switch {
		case ev.Cat == CatSim:
			ce.Pid, ce.Tid = chromePidProcs, int(ev.CPU)
		case ev.CPU < 0:
			ce.Pid, ce.Tid = chromePidCPUs, chromeTidGlobal
		default:
			ce.Pid, ce.Tid = chromePidCPUs, int(ev.CPU)
		}
		if ev.Ph == PhaseInstant {
			if ev.Cat == CatMeta {
				ce.Scope = "g" // run markers span the whole view
			} else {
				ce.Scope = "t"
			}
		}
		if ev.Arg1 != 0 || ev.Arg2 != 0 {
			ce.Args = map[string]any{"a1": ev.Arg1, "a2": ev.Arg2}
		}
		if err := enc(&first, ce); err != nil {
			return err
		}
	}
	meta := fmt.Sprintf(`],"otherData":{"dropped":%d,"retained":%d}}`, t.Dropped(), t.Len())
	if _, err := bw.WriteString(meta); err != nil {
		return err
	}
	return bw.Flush()
}

// metadataEvents names the process and thread rows so Perfetto shows
// "cpus/cpu3" and "procs/thread:child2" instead of bare numbers.
func (t *Tracer) metadataEvents() []chromeEvent {
	if t == nil {
		return nil
	}
	nameMeta := func(pid, tid int, key, name string) chromeEvent {
		return chromeEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		}
	}
	out := []chromeEvent{
		nameMeta(chromePidCPUs, 0, "process_name", "cpus"),
		nameMeta(chromePidProcs, 0, "process_name", "procs"),
		nameMeta(chromePidCPUs, chromeTidGlobal, "thread_name", "global"),
	}
	cpus := map[int32]bool{}
	for _, ev := range t.Events() {
		if ev.Cat != CatSim && ev.CPU >= 0 {
			cpus[ev.CPU] = true
		}
	}
	cpuIDs := make([]int, 0, len(cpus))
	for c := range cpus {
		cpuIDs = append(cpuIDs, int(c))
	}
	sort.Ints(cpuIDs)
	for _, c := range cpuIDs {
		out = append(out, nameMeta(chromePidCPUs, c, "thread_name", fmt.Sprintf("cpu%d", c)))
	}
	procIDs := make([]int, 0, len(t.procNames))
	for id := range t.procNames {
		procIDs = append(procIDs, int(id))
	}
	sort.Ints(procIDs)
	for _, id := range procIDs {
		out = append(out, nameMeta(chromePidProcs, id, "thread_name", t.procNames[int32(id)]))
	}
	return out
}
