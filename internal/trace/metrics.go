package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"shootdown/internal/stats"
)

// MetricSet is an ordered collection of counters, gauges, and histograms,
// rendered in the Prometheus text exposition format. Experiments emit one
// snapshot per run so counter trajectories can be tracked across PRs without
// scraping human-readable tables.
type MetricSet struct {
	metrics []metric
}

type metric struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels map[string]string
	value  float64
	hist   *stats.Histogram
}

// NewMetricSet creates an empty metric set.
func NewMetricSet() *MetricSet {
	return &MetricSet{}
}

// Counter adds a monotonic counter sample.
func (m *MetricSet) Counter(name, help string, v float64, labels map[string]string) {
	m.metrics = append(m.metrics, metric{name: name, help: help, typ: "counter", value: v, labels: labels})
}

// Gauge adds a point-in-time gauge sample.
func (m *MetricSet) Gauge(name, help string, v float64, labels map[string]string) {
	m.metrics = append(m.metrics, metric{name: name, help: help, typ: "gauge", value: v, labels: labels})
}

// Histogram adds a latency/size distribution. The histogram is rendered with
// cumulative le buckets plus _sum and _count series.
func (m *MetricSet) Histogram(name, help string, h *stats.Histogram, labels map[string]string) {
	m.metrics = append(m.metrics, metric{name: name, help: help, typ: "histogram", hist: h, labels: labels})
}

// labelString renders {k="v",...} with sorted keys, merging extra pairs.
func labelString(labels map[string]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	if extraK != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraK, extraV))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteTo renders the set in Prometheus text format. HELP/TYPE headers are
// emitted once per metric name, on first use.
func (m *MetricSet) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	helped := map[string]bool{}
	for _, mt := range m.metrics {
		if !helped[mt.name] {
			helped[mt.name] = true
			fmt.Fprintf(&b, "# HELP %s %s\n", mt.name, mt.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", mt.name, mt.typ)
		}
		switch mt.typ {
		case "histogram":
			for _, bk := range mt.hist.Buckets() {
				le := "+Inf"
				if !math.IsInf(bk.UpperBound, 1) {
					le = fmt.Sprintf("%g", bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", mt.name, labelString(mt.labels, "le", le), bk.Cumulative)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", mt.name, labelString(mt.labels, "", ""), fmtFloat(mt.hist.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", mt.name, labelString(mt.labels, "", ""), mt.hist.Count())
		default:
			fmt.Fprintf(&b, "%s%s %s\n", mt.name, labelString(mt.labels, "", ""), fmtFloat(mt.value))
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the set as Prometheus text.
func (m *MetricSet) String() string {
	var b strings.Builder
	_, _ = m.WriteTo(&b)
	return b.String()
}
