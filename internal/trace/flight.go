package trace

// The flight recorder: an always-on bounded ring of recent trace events
// plus a set of registered state providers, dumped as one self-describing
// JSON "black box" the moment something goes wrong — the watchdog
// escalates, the oracle flags a divergence, deadlock detection fires, or a
// chaos campaign fails. The point is that a CI failure ships its own
// reproducer context: the last events before the trip, the wait graph, the
// per-CPU protocol state, the in-flight shootdown DAGs, and the fault
// schedule that provoked it all land in one file.
//
// Like the tracer it wraps, the recorder charges no virtual time and
// consumes no simulation randomness, so an instrumented run is
// bit-identical to an uninstrumented one; and like the xpr ring it never
// hides truncation — the black box carries the ring's drop counter, so a
// post-mortem always states its own completeness. Every method is safe on
// a nil *Recorder.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// BlackBoxFormat identifies the black-box JSON wire format. shootdownd
// will later stream the same shape.
const BlackBoxFormat = "shootdown-blackbox/v1"

// DefaultMaxDumps bounds the black boxes one recorder writes: the first
// few trips carry all the signal, and a pathological run (every shootdown
// escalating) must not fill the disk. Suppressed trips are still counted
// and listed in Trips().
const DefaultMaxDumps = 4

// Trip records one trigger of the flight recorder, dumped or not.
type Trip struct {
	Reason    string `json:"reason"` // "watchdog", "oracle", "deadlock", "timeout", "error", "chaos"
	Detail    string `json:"detail"`
	VirtualNS int64  `json:"virtual_ns"`
	// Path is the black box written for this trip ("" when the dump was
	// suppressed by the MaxDumps cap or no directory was configured).
	Path string `json:"path,omitempty"`
	// Err reports a failed dump (I/O errors must not crash the run the
	// recorder is observing).
	Err string `json:"err,omitempty"`
}

// BlackBox is the decoded form of one dump; cmd/tlbtrace validates and
// queries it.
type BlackBox struct {
	Format    string          `json:"format"`
	Trip      int             `json:"trip"` // 0-based trip index within the session
	Reason    string          `json:"reason"`
	Detail    string          `json:"detail"`
	VirtualNS int64           `json:"virtual_ns"`
	Ring      BlackBoxRing    `json:"ring"`
	State     []BlackBoxState `json:"state"`
}

// BlackBoxRing is the event ring at trip time. Retained+Dropped together
// state the dump's completeness: Dropped > 0 means the window wrapped and
// older events are gone (counted, never silent).
type BlackBoxRing struct {
	Capacity int             `json:"capacity"`
	Retained int             `json:"retained"`
	Dropped  uint64          `json:"dropped"`
	Events   []BlackBoxEvent `json:"events"`
}

// BlackBoxEvent is one ring record in wire form.
type BlackBoxEvent struct {
	TS   int64  `json:"ts"`
	CPU  int32  `json:"cpu"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Name string `json:"name"`
	A1   int64  `json:"a1,omitempty"`
	A2   int64  `json:"a2,omitempty"`
}

// BlackBoxState is one provider's snapshot. Data is whatever structured
// value the provider returned; providers must return only structs, slices,
// and scalars (no unordered map ranges) so dumps are byte-deterministic.
type BlackBoxState struct {
	Name string          `json:"name"`
	Data json.RawMessage `json:"data"`
}

// provider is one registered state source.
type provider struct {
	name string
	snap func() any
}

// Recorder is the flight recorder. Build one with NewRecorder, hand it to
// kernel.Config.Flight (experiments plumb it via Instrument), and call
// SetDir to choose where black boxes land. A nil *Recorder is a valid
// "flight recording disabled" value: every method is a no-op on it.
type Recorder struct {
	ring  *Tracer
	owned bool // ring created here (vs. an attached session tracer)
	dir   string

	providers []provider
	trips     []Trip
	dumped    int
	maxDumps  int
}

// NewRecorder creates a recorder with an owned event ring of the given
// capacity. The ring is a plain Tracer, so attaching it as the kernel's
// tracer costs nothing extra; kernel.New does exactly that when no session
// tracer is configured.
func NewRecorder(ringSize int) (*Recorder, error) {
	t, err := New(ringSize)
	if err != nil {
		return nil, fmt.Errorf("trace: flight recorder: %w", err)
	}
	return &Recorder{ring: t, owned: true, maxDumps: DefaultMaxDumps}, nil
}

// Ring returns the recorder's event ring.
func (r *Recorder) Ring() *Tracer {
	if r == nil {
		return nil
	}
	return r.ring
}

// AttachRing replaces the owned ring with an external tracer (the session
// tracer, when -trace is also in effect), so the black box's event window
// and the session trace are one buffer.
func (r *Recorder) AttachRing(t *Tracer) {
	if r == nil || t == nil {
		return
	}
	r.ring = t
	r.owned = false
}

// SetDir selects the directory black boxes are written into (created on
// first dump). With no directory, trips are still recorded and counted but
// nothing is written — tests and embedders can call Dump themselves.
func (r *Recorder) SetDir(dir string) {
	if r == nil {
		return
	}
	r.dir = dir
}

// SetMaxDumps overrides the black-box cap (0 restores the default).
func (r *Recorder) SetMaxDumps(n int) {
	if r == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxDumps
	}
	r.maxDumps = n
}

// BeginRun resets the per-kernel provider set. Each kernel build registers
// its own providers (its engine, machine, protocol, oracle are new
// objects); trips and written black boxes persist across runs so a session
// keeps one numbered sequence.
func (r *Recorder) BeginRun() {
	if r == nil {
		return
	}
	r.providers = r.providers[:0]
}

// Register adds a named state provider. Providers are snapshotted in
// registration order at trip time, so registration order is part of the
// wire format — kernel.New registers in a fixed sequence.
func (r *Recorder) Register(name string, snap func() any) {
	if r == nil || snap == nil {
		return
	}
	r.providers = append(r.providers, provider{name: name, snap: snap})
}

// Trips returns every trigger so far, dumped or suppressed.
func (r *Recorder) Trips() []Trip {
	if r == nil {
		return nil
	}
	return r.trips
}

// Dumped returns how many black boxes were written.
func (r *Recorder) Dumped() int {
	if r == nil {
		return 0
	}
	return r.dumped
}

// Trip triggers the recorder: record the trip and, if a directory is set
// and the dump cap not yet reached, write blackbox-<n>-<reason>.json.
// Failures to write are recorded on the trip, never propagated — the
// recorder must not alter the outcome of the run it is observing.
func (r *Recorder) Trip(nowNS int64, reason, detail string) {
	if r == nil {
		return
	}
	t := Trip{Reason: reason, Detail: detail, VirtualNS: nowNS}
	idx := len(r.trips)
	if r.dir != "" && r.dumped < r.maxDumps {
		path := filepath.Join(r.dir, fmt.Sprintf("blackbox-%d-%s.json", idx, reason))
		if err := r.dumpFile(path, idx, nowNS, reason, detail); err != nil {
			t.Err = err.Error()
		} else {
			t.Path = path
			r.dumped++
		}
	}
	r.trips = append(r.trips, t)
}

// dumpFile writes one black box to path, creating the directory if needed.
func (r *Recorder) dumpFile(path string, idx int, nowNS int64, reason, detail string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Dump(f, idx, nowNS, reason, detail); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Dump writes one black box to w: the ring (with its drop counter) and
// every provider's snapshot, in registration order, as indented JSON.
func (r *Recorder) Dump(w io.Writer, idx int, nowNS int64, reason, detail string) error {
	if r == nil {
		return fmt.Errorf("trace: Dump on nil flight recorder")
	}
	box := BlackBox{
		Format:    BlackBoxFormat,
		Trip:      idx,
		Reason:    reason,
		Detail:    detail,
		VirtualNS: nowNS,
		Ring: BlackBoxRing{
			Capacity: r.ring.Cap(),
			Retained: r.ring.Len(),
			Dropped:  r.ring.Dropped(),
		},
	}
	for _, ev := range r.ring.Events() {
		box.Ring.Events = append(box.Ring.Events, BlackBoxEvent{
			TS: ev.TS, CPU: ev.CPU, Cat: ev.Cat.String(), Ph: ev.Ph.String(),
			Name: ev.Name, A1: ev.Arg1, A2: ev.Arg2,
		})
	}
	for _, p := range r.providers {
		data, err := json.Marshal(p.snap())
		if err != nil {
			// A provider that cannot marshal must not lose the rest of
			// the box; record the failure in its slot.
			data, _ = json.Marshal(fmt.Sprintf("marshal error: %v", err))
		}
		box.State = append(box.State, BlackBoxState{Name: p.name, Data: data})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(box)
}
