package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fillRing records n instants with ascending timestamps.
func fillRing(t *Tracer, n int, start int64) {
	for i := 0; i < n; i++ {
		t.Instant(start+int64(i), i%4, CatMachine, "ev", int64(i), 0)
	}
}

// A wrapped ring keeps the newest events and counts every overwrite.
func TestRingWraparoundCountsDrops(t *testing.T) {
	r, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	fillRing(r.Ring(), 20, 0)
	if got := r.Ring().Len(); got != 8 {
		t.Fatalf("ring holds %d events, want 8", got)
	}
	if got := r.Ring().Dropped(); got != 12 {
		t.Fatalf("ring dropped %d events, want 12", got)
	}
	evs := r.Ring().Events()
	if evs[0].TS != 12 || evs[len(evs)-1].TS != 19 {
		t.Fatalf("retained window [%d, %d], want [12, 19]", evs[0].TS, evs[len(evs)-1].TS)
	}
}

// A black box dumped after wraparound must carry the retained window and
// state its own incompleteness via the drop counter.
func TestDumpUnderWraparound(t *testing.T) {
	r, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	fillRing(r.Ring(), 20, 0)
	r.Register("probe", func() any { return map[string]int{"x": 1} })

	var buf bytes.Buffer
	if err := r.Dump(&buf, 0, 19, "watchdog", "test trip"); err != nil {
		t.Fatal(err)
	}
	var box BlackBox
	if err := json.Unmarshal(buf.Bytes(), &box); err != nil {
		t.Fatal(err)
	}
	if box.Format != BlackBoxFormat {
		t.Fatalf("format %q, want %q", box.Format, BlackBoxFormat)
	}
	if box.Ring.Capacity != 8 || box.Ring.Retained != 8 || box.Ring.Dropped != 12 {
		t.Fatalf("ring accounting cap=%d retained=%d dropped=%d, want 8/8/12",
			box.Ring.Capacity, box.Ring.Retained, box.Ring.Dropped)
	}
	if len(box.Ring.Events) != box.Ring.Retained {
		t.Fatalf("box carries %d events but claims %d retained", len(box.Ring.Events), box.Ring.Retained)
	}
	if box.Ring.Events[0].TS != 12 {
		t.Fatalf("oldest retained event at %dns, want 12", box.Ring.Events[0].TS)
	}
	if len(box.State) != 1 || box.State[0].Name != "probe" {
		t.Fatalf("state sections %+v, want one named probe", box.State)
	}
}

// Two identical event sequences with identical providers must dump
// byte-identical black boxes — the property chaos CI relies on to compare
// failing runs.
func TestDumpDeterminism(t *testing.T) {
	dump := func() []byte {
		r, err := NewRecorder(16)
		if err != nil {
			t.Fatal(err)
		}
		tr := r.Ring()
		for i := 0; i < 40; i++ {
			tr.Begin(int64(i*10), i%3, CatShootdown, "sync", int64(i), 0)
			tr.End(int64(i*10+5), i%3, CatShootdown, "sync")
		}
		r.Register("cpus", func() any {
			return []struct {
				ID    int    `json:"id"`
				State string `json:"state"`
			}{{0, "running"}, {1, "spinning"}, {2, "idle"}}
		})
		r.Register("stats", func() any { return struct{ N int }{40} })
		var buf bytes.Buffer
		if err := r.Dump(&buf, 3, 395, "oracle", "stale pte"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := dump(), dump()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs dumped different black boxes:\n%s\n---\n%s", a, b)
	}
}

// The dump cap suppresses writes but never trip accounting, and the
// written files are named by trip index and reason.
func TestMaxDumpsCap(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	r.SetDir(dir)
	r.SetMaxDumps(2)
	fillRing(r.Ring(), 4, 0)
	for i := 0; i < 5; i++ {
		r.Trip(int64(100+i), "watchdog", fmt.Sprintf("trip %d", i))
	}
	if got := len(r.Trips()); got != 5 {
		t.Fatalf("recorded %d trips, want 5", got)
	}
	if got := r.Dumped(); got != 2 {
		t.Fatalf("wrote %d black boxes, want 2 (capped)", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("directory holds %d files, want 2", len(ents))
	}
	for i, trip := range r.Trips() {
		if i < 2 {
			want := filepath.Join(dir, fmt.Sprintf("blackbox-%d-watchdog.json", i))
			if trip.Path != want {
				t.Fatalf("trip %d path %q, want %q", i, trip.Path, want)
			}
		} else if trip.Path != "" {
			t.Fatalf("suppressed trip %d has path %q", i, trip.Path)
		}
	}
}

// Providers are snapshotted in registration order: the order is part of
// the wire format, so post-mortems can diff sections positionally.
func TestProviderOrder(t *testing.T) {
	r, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"engine", "cpus", "shootdown", "oracle"} {
		n := name
		r.Register(n, func() any { return n })
	}
	var buf bytes.Buffer
	if err := r.Dump(&buf, 0, 0, "deadlock", ""); err != nil {
		t.Fatal(err)
	}
	var box BlackBox
	if err := json.Unmarshal(buf.Bytes(), &box); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, st := range box.State {
		got = append(got, st.Name)
	}
	want := "engine cpus shootdown oracle"
	if strings.Join(got, " ") != want {
		t.Fatalf("provider order %v, want %q", got, want)
	}
}

// BeginRun clears providers (each kernel registers fresh objects) but
// keeps the session's trip sequence and dump count.
func TestBeginRunKeepsTrips(t *testing.T) {
	r, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	r.Register("stale", func() any { return "old kernel" })
	r.Trip(10, "oracle", "first run")
	r.BeginRun()
	var buf bytes.Buffer
	if err := r.Dump(&buf, 1, 20, "oracle", "second run"); err != nil {
		t.Fatal(err)
	}
	var box BlackBox
	if err := json.Unmarshal(buf.Bytes(), &box); err != nil {
		t.Fatal(err)
	}
	if len(box.State) != 0 {
		t.Fatalf("providers survived BeginRun: %+v", box.State)
	}
	if got := len(r.Trips()); got != 1 {
		t.Fatalf("BeginRun lost trips: have %d, want 1", got)
	}
}

// A provider whose value cannot marshal must not lose the rest of the box.
func TestProviderMarshalErrorIsolated(t *testing.T) {
	r, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	r.Register("bad", func() any { return func() {} }) // funcs don't marshal
	r.Register("good", func() any { return 7 })
	var buf bytes.Buffer
	if err := r.Dump(&buf, 0, 0, "error", ""); err != nil {
		t.Fatal(err)
	}
	var box BlackBox
	if err := json.Unmarshal(buf.Bytes(), &box); err != nil {
		t.Fatal(err)
	}
	if len(box.State) != 2 {
		t.Fatalf("state sections %d, want 2", len(box.State))
	}
	if !strings.Contains(string(box.State[0].Data), "marshal error") {
		t.Fatalf("bad provider slot = %s, want a marshal error note", box.State[0].Data)
	}
	if string(box.State[1].Data) != "7" {
		t.Fatalf("good provider slot = %s, want 7", box.State[1].Data)
	}
}

// Every method must be a no-op on a nil recorder so call sites need no
// nil checks (the same contract as the tracer).
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.SetDir("/nope")
	r.SetMaxDumps(1)
	r.BeginRun()
	r.Register("x", func() any { return 1 })
	r.AttachRing(nil)
	r.Trip(0, "watchdog", "nil")
	if r.Ring() != nil || r.Trips() != nil || r.Dumped() != 0 {
		t.Fatal("nil recorder returned non-zero state")
	}
	if err := r.Dump(&bytes.Buffer{}, 0, 0, "x", ""); err == nil {
		t.Fatal("Dump on nil recorder should error, not panic silently succeeding")
	}
}

// Attaching an external session tracer makes it the black box's window.
func TestAttachRing(t *testing.T) {
	session, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	r.AttachRing(session)
	session.Instant(42, 1, CatTLB, "flush", 0, 0)
	var buf bytes.Buffer
	if err := r.Dump(&buf, 0, 42, "watchdog", ""); err != nil {
		t.Fatal(err)
	}
	var box BlackBox
	if err := json.Unmarshal(buf.Bytes(), &box); err != nil {
		t.Fatal(err)
	}
	if box.Ring.Capacity != 8 || box.Ring.Retained != 1 || box.Ring.Events[0].Name != "flush" {
		t.Fatalf("attached ring not reflected in box: %+v", box.Ring)
	}
}
