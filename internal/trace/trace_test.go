package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRingWrapAndDropped(t *testing.T) {
	tr := mustNew(t, 4)
	for i := 0; i < 6; i++ {
		tr.Instant(int64(i*1000), 0, CatMachine, "tick", int64(i), 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	// Oldest two overwritten; survivors are 2..5 in arrival order.
	for i, want := range []int64{2, 3, 4, 5} {
		if evs[i].Arg1 != want {
			t.Fatalf("evs[%d].Arg1 = %d, want %d", i, evs[i].Arg1, want)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.On()
	tr.Off()
	tr.SetCategory(CatTLB, false)
	tr.Begin(1, 0, CatKernel, "x", 0, 0)
	tr.End(2, 0, CatKernel, "x")
	tr.Instant(3, 0, CatKernel, "y", 0, 0)
	tr.Rebase("run")
	tr.NameProc(1, "p")
	if tr.Enabled() || tr.Len() != 0 || tr.Cap() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reported state")
	}
	if tr.Events() != nil || tr.Select(CatKernel) != nil {
		t.Fatal("nil tracer returned events")
	}
}

func TestOnOffAndCategoryFilter(t *testing.T) {
	tr := mustNew(t, 8)
	tr.Off()
	tr.Instant(1, 0, CatTLB, "tlb-hit", 0, 0)
	if tr.Len() != 0 {
		t.Fatal("recorded while off")
	}
	tr.On()
	tr.SetCategory(CatTLB, false)
	tr.Instant(2, 0, CatTLB, "tlb-hit", 0, 0)
	tr.Instant(3, 0, CatMachine, "ipi-send", 0, 0)
	if got := len(tr.Select(CatTLB)); got != 0 {
		t.Fatalf("disabled category recorded %d events", got)
	}
	if got := len(tr.Select(CatMachine)); got != 1 {
		t.Fatalf("enabled category recorded %d events, want 1", got)
	}
	tr.SetCategory(CatTLB, true)
	tr.Instant(4, 0, CatTLB, "tlb-hit", 0, 0)
	if got := len(tr.Select(CatTLB)); got != 1 {
		t.Fatalf("re-enabled category recorded %d events, want 1", got)
	}
}

func TestRebaseKeepsTimestampsMonotonic(t *testing.T) {
	tr := mustNew(t, 16)
	tr.Instant(5_000, 1, CatKernel, "a", 0, 0)
	tr.Rebase("run2")
	// The second run restarts at virtual time zero; its events must still
	// land after the first run's on the shared session timeline.
	tr.Instant(1_000, 1, CatKernel, "b", 0, 0)
	evs := tr.Events()
	if len(evs) != 3 { // a, meta marker, b
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("timestamps went backwards: %d after %d", evs[i].TS, evs[i-1].TS)
		}
	}
	metas := tr.Select(CatMeta)
	if len(metas) != 1 || metas[0].Name != "run2" {
		t.Fatalf("meta markers = %+v, want one named run2", metas)
	}
}

func TestLoggingDoesNotAllocate(t *testing.T) {
	tr := mustNew(t, 1<<12)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Begin(1, 0, CatShootdown, "shootdown-sync", 3, 1)
		tr.Instant(2, 0, CatMachine, "ipi-send", 5, 0)
		tr.End(3, 0, CatShootdown, "shootdown-sync")
	})
	if allocs != 0 {
		t.Fatalf("logging allocated %.1f times per op, want 0", allocs)
	}
}

// chromeDoc mirrors the exported JSON shape for validation.
type chromeDoc struct {
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	TraceEvents     []map[string]any `json:"traceEvents"`
	OtherData       map[string]any   `json:"otherData"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := mustNew(t, 64)
	tr.NameProc(2, "child0")
	tr.Begin(0, 1, CatKernel, "thread-run", 7, 0)
	tr.Instant(500, 1, CatTLB, "tlb-miss", 1, 0)
	tr.Instant(800, 1, CatMachine, "ipi-send", 2, 0)
	tr.Begin(1_000, 1, CatShootdown, "shootdown-sync", 1, 0)
	tr.End(4_000, 1, CatShootdown, "shootdown-sync")
	tr.Instant(4_200, 2, CatSim, "sleep", 0, 0)
	tr.End(5_000, 1, CatKernel, "thread-run")

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	cats := map[string]bool{}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if cat, ok := ev["cat"].(string); ok {
			cats[cat] = true
		}
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event missing numeric ts: %v", ev)
			}
		}
	}
	for _, want := range []string{"kernel", "tlb", "machine", "shootdown", "sim"} {
		if !cats[want] {
			t.Fatalf("category %q missing from export (got %v)", want, cats)
		}
	}
	if phases["B"] != phases["E"] {
		t.Fatalf("unbalanced spans: %d B vs %d E", phases["B"], phases["E"])
	}
	if phases["M"] == 0 {
		t.Fatal("no metadata events naming the timelines")
	}
	if doc.OtherData["dropped"].(float64) != 0 {
		t.Fatalf("otherData.dropped = %v, want 0", doc.OtherData["dropped"])
	}
	// CatSim events go to the proc process row, others to the CPU row.
	for _, ev := range doc.TraceEvents {
		if ev["cat"] == "sim" && ev["pid"].(float64) != 1 {
			t.Fatalf("sim event on pid %v, want 1", ev["pid"])
		}
		if ev["cat"] == "tlb" && ev["pid"].(float64) != 0 {
			t.Fatalf("tlb event on pid %v, want 0", ev["pid"])
		}
	}
}

func TestWriteChromeTraceNil(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer exported %d events", len(doc.TraceEvents))
	}
}

// mustNew builds a tracer or fails the test.
func mustNew(t *testing.T, size int) *Tracer {
	t.Helper()
	tr, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsInvalidSize(t *testing.T) {
	for _, size := range []int{0, -1} {
		if tr, err := New(size); err == nil {
			t.Errorf("New(%d) = %v, want error", size, tr)
		}
	}
}
