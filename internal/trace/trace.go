// Package trace is the full-fidelity observability layer for the simulated
// multiprocessor: a typed span/instant tracer that every layer of the stack
// (sim engine, machine, shootdown protocol, TLBs, kernel) logs into, with a
// Chrome trace-event exporter for timeline inspection in chrome://tracing or
// Perfetto, and a Prometheus-style text metrics snapshot.
//
// It generalizes the xpr ring-buffer design (Section 6 of the paper): fixed
// pre-allocated records, a free-running virtual timestamp per record, and no
// locking (the discrete-event engine serializes all producers). Two properties
// are load-bearing:
//
//  1. Recording is zero-allocation and zero-virtual-time on the hot path:
//     logging writes one record into a pre-allocated ring and never charges
//     simulated time or consumes simulation randomness, so enabling tracing
//     cannot perturb virtual-time results (the §6.1 guarantee, enforced by a
//     determinism test).
//
//  2. Wraparound is never silent: when the ring is full the oldest record is
//     overwritten and Dropped is incremented, so a truncated trace is always
//     distinguishable from a complete one.
//
// All methods are safe on a nil *Tracer (they do nothing), so instrumented
// code needs no nil checks at call sites.
package trace

import (
	"fmt"
	"unsafe"

	"shootdown/internal/hostprof"
)

// Category classifies an event by the layer that produced it. Categories
// become the "cat" field of exported Chrome trace events and may be
// selectively disabled to control trace volume.
type Category uint8

// Event categories, one per instrumented layer.
const (
	// CatSim: discrete-event engine scheduling (proc run/sleep/block/preempt).
	CatSim Category = iota
	// CatMachine: hardware events (IPI send/deliver, IPL changes, bus waits).
	CatMachine
	// CatShootdown: the consistency protocol's phases (sync, respond, stall).
	CatShootdown
	// CatTLB: translation buffer events (hit, miss, invalidate, flush).
	CatTLB
	// CatKernel: thread dispatch and idle transitions.
	CatKernel
	// CatMeta: tracer-internal markers (run boundaries from Rebase).
	CatMeta
	// CatDevice: device (IOMMU/device-TLB) events — doorbell posts and
	// rings, queue service, completions, resets, quarantines. Appended
	// after CatMeta so pre-device category numbering is unchanged.
	CatDevice
	numCategories
)

func (c Category) String() string {
	switch c {
	case CatSim:
		return "sim"
	case CatMachine:
		return "machine"
	case CatShootdown:
		return "shootdown"
	case CatTLB:
		return "tlb"
	case CatKernel:
		return "kernel"
	case CatMeta:
		return "meta"
	case CatDevice:
		return "device"
	default:
		return "unknown"
	}
}

// Phase is the event kind, mirroring the Chrome trace-event phases.
type Phase uint8

// Event phases.
const (
	// PhaseBegin opens a span on a timeline; it must be matched by a
	// PhaseEnd with the same name on the same timeline.
	PhaseBegin Phase = iota
	// PhaseEnd closes the most recent open span on a timeline.
	PhaseEnd
	// PhaseInstant marks a point event.
	PhaseInstant
)

func (p Phase) String() string {
	switch p {
	case PhaseBegin:
		return "B"
	case PhaseEnd:
		return "E"
	case PhaseInstant:
		return "i"
	default:
		return "?"
	}
}

// Event is one fixed-size trace record. Name must be a string that outlives
// the tracer (in practice: a constant or an already-retained name), so
// recording never allocates.
type Event struct {
	TS   int64 // virtual ns, already rebased onto the session timeline
	CPU  int32 // CPU number; proc id for CatSim events; -1 when unbound
	Cat  Category
	Ph   Phase
	Name string
	Arg1 int64
	Arg2 int64
}

// Tracer is a fixed-capacity ring of events. The zero value is unusable;
// call New. A nil *Tracer is a valid "tracing disabled" value: every method
// is a no-op on it.
type Tracer struct {
	events   []Event
	next     int
	count    int
	dropped  uint64
	enabled  bool
	disabled [numCategories]bool

	base  int64 // offset added to every timestamp (see Rebase)
	maxTS int64 // largest rebased timestamp recorded so far

	procNames map[int32]string

	// hc tallies host allocation costs (ring footprint at attach, export
	// copies) for the hostprof attribution layer. Counting is plain
	// integer arithmetic: it cannot perturb recording or the simulation.
	hc *hostprof.Counters
}

// New creates a tracer holding up to size records, initially enabled with
// every category on. It returns an error for a non-positive size — buffer
// sizes typically arrive from flags, and a bad flag should be a diagnosed
// failure, not a crash.
func New(size int) (*Tracer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("trace: invalid tracer size %d (must be positive)", size)
	}
	return &Tracer{
		events:    make([]Event, size),
		enabled:   true,
		procNames: map[int32]string{},
	}, nil
}

// EventBytes is the in-memory size of one record: a tracer ring costs
// exactly Cap() × EventBytes, which is how hostprof accounts for it.
const EventBytes = int64(unsafe.Sizeof(Event{}))

// SetHostCounters attaches host-cost counters (nil detaches) and tallies
// the ring's footprint against the trace-ring site. A session tracer is
// attached once per kernel build, so sequential kernels each account the
// (shared) ring they observe through — the site is marked inexact for
// exactly that reason.
func (t *Tracer) SetHostCounters(c *hostprof.Counters) {
	if t == nil {
		return
	}
	t.hc = c
	c.Add(hostprof.SiteTraceRing, 1, int64(len(t.events))*EventBytes)
}

// On enables recording.
func (t *Tracer) On() {
	if t == nil {
		return
	}
	t.enabled = true
}

// Off disables recording.
func (t *Tracer) Off() {
	if t == nil {
		return
	}
	t.enabled = false
}

// Enabled reports whether the tracer is recording. A nil tracer is not.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// SetCategory enables or disables one category.
func (t *Tracer) SetCategory(c Category, on bool) {
	if t == nil || c >= numCategories {
		return
	}
	t.disabled[c] = !on
}

// Dropped returns the number of records lost to ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Len returns the number of records currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.count
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Rebase shifts the tracer's epoch to just after the latest recorded event
// and drops a CatMeta instant marking the boundary. Sequential simulation
// runs (each starting at virtual time zero) share one session trace without
// overlapping: call Rebase before each run.
func (t *Tracer) Rebase(label string) {
	if t == nil {
		return
	}
	t.base = t.maxTS
	t.log(Event{TS: t.base, CPU: -1, Cat: CatMeta, Ph: PhaseInstant, Name: label})
}

// NameProc associates a display name with a sim-proc id for the exporter's
// per-proc timelines. (Allocates; call from spawn paths, not hot paths.)
func (t *Tracer) NameProc(id int, name string) {
	if t == nil {
		return
	}
	t.procNames[int32(id)] = name
}

// Begin opens a span. ts is the raw virtual time (ns); cpu is the timeline.
func (t *Tracer) Begin(ts int64, cpu int, cat Category, name string, a1, a2 int64) {
	if t == nil || !t.enabled || t.disabled[cat] {
		return
	}
	t.log(Event{TS: ts + t.base, CPU: int32(cpu), Cat: cat, Ph: PhaseBegin, Name: name, Arg1: a1, Arg2: a2})
}

// End closes the most recent open span with this name on the cpu timeline.
func (t *Tracer) End(ts int64, cpu int, cat Category, name string) {
	if t == nil || !t.enabled || t.disabled[cat] {
		return
	}
	t.log(Event{TS: ts + t.base, CPU: int32(cpu), Cat: cat, Ph: PhaseEnd, Name: name})
}

// Instant records a point event.
func (t *Tracer) Instant(ts int64, cpu int, cat Category, name string, a1, a2 int64) {
	if t == nil || !t.enabled || t.disabled[cat] {
		return
	}
	t.log(Event{TS: ts + t.base, CPU: int32(cpu), Cat: cat, Ph: PhaseInstant, Name: name, Arg1: a1, Arg2: a2})
}

// log writes one record into the ring, counting (not hiding) overwrites.
func (t *Tracer) log(ev Event) {
	if ev.TS > t.maxTS {
		t.maxTS = ev.TS
	}
	t.events[t.next] = ev
	t.next = (t.next + 1) % len(t.events)
	if t.count < len(t.events) {
		t.count++
	} else {
		t.dropped++
	}
}

// Events returns the retained records in arrival order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.hc.Add(hostprof.SiteTraceExport, 1, int64(t.count)*EventBytes)
	out := make([]Event, 0, t.count)
	if t.count == len(t.events) {
		out = append(out, t.events[t.next:]...)
		out = append(out, t.events[:t.next]...)
	} else {
		out = append(out, t.events[:t.count]...)
	}
	return out
}

// Select returns the retained records in the given category, in order.
func (t *Tracer) Select(cat Category) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.Cat == cat {
			out = append(out, ev)
		}
	}
	return out
}
