// Package explore is the schedule-space side of the robustness tooling: a
// shared deterministic run fixture (Cell), a restore-to-prefix shrink
// harness (Rewinder), and a DPOR-lite schedule explorer that forks a run
// at racy tie decisions and replays each fork down the other branch.
//
// All three stand on the same substrate: the engine's event-step cursor is
// a total order over scheduling decisions, whole-simulation snapshots
// (kernel.Snapshot) pin the state at any step boundary, and replaying a
// fresh world with the same (config, seed, mask, forced ties) lands on
// byte-identical state — so "restore to step n" is "rebuild and replay to
// n", verified by snapshot digest rather than assumed.
//
// The race model is deliberately coarse (hence DPOR-*lite*): any chaos tie
// broken while a shootdown is in flight (an initiator between Begin and
// Finish, or a responder with actions pending — core.RaceWindowOpen) is a
// racy pair worth exploring, because the orderings it arbitrates are
// exactly IPI delivery vs. pmap-lock acquire vs. barrier exit, the
// triangle the paper's protocol exists to make safe. Forking the schedule
// there and flipping the order is how the explorer hunts for
// interleaving-dependent oracle violations the seed alone never takes.
package explore

import (
	"errors"
	"strings"

	"shootdown/internal/core"
	"shootdown/internal/fault"
	"shootdown/internal/kernel"
	"shootdown/internal/sim"
	"shootdown/internal/trace"
	"shootdown/internal/workload"
)

// Run verdicts, shared with the experiments layer.
const (
	VerdictOK       = "ok"
	VerdictOracle   = "oracle"   // consistency violation (the interesting failure)
	VerdictDeadlock = "deadlock" // blocked procs, none runnable
	VerdictTimeout  = "timeout"  // virtual-time bound hit (livelock/hang)
	VerdictError    = "error"    // anything else
)

// Classify maps a run error to a verdict string shrink tests compare.
func Classify(err error) string {
	switch {
	case err == nil:
		return VerdictOK
	case errors.Is(err, sim.ErrDeadlock):
		return VerdictDeadlock
	case strings.Contains(err.Error(), "oracle:"):
		return VerdictOracle
	case strings.Contains(err.Error(), "virtual time limit"):
		return VerdictTimeout
	default:
		return VerdictError
	}
}

// Cell is one deterministic churn run under a fault config: the fixture
// the chaos campaign, the shrinker, and the explorer all re-execute. Two
// Cells with equal fields produce byte-identical runs.
type Cell struct {
	Seed  int64
	NCPUs int          // default 6
	Scale float64      // work multiplier (default 0.5, the campaign's)
	Fault fault.Config // fault kinds, rates, and mask
	// Workload selects the fixture: "churn" (default) or "dma" (device
	// streams with unmap-under-DMA churn; requires Devices > 0 or the
	// workload's own default of one device).
	Workload string
	// Devices is the device-TLB count for the "dma" workload.
	Devices int
	// Bug plants the intentional stale-TLB-after-revive bug.
	Bug bool
	// DevBug plants the intentional stale-device-TLB bug (devices
	// acknowledge invalidations without performing them).
	DevBug bool
	// Shootdown tunes the protocol (the campaign passes its hardened
	// watchdog configuration).
	Shootdown core.Options
	// MaxVirtualTime bounds the run (default 30 virtual seconds).
	MaxVirtualTime sim.Time
	// Ties forces the engine's chaos tie decisions by ordinal; the
	// explorer's forks differ from the base run only here.
	Ties []int
	// Flight arms the flight recorder for the run; shrink and explorer
	// re-executions pass nil so dozens of replays don't each dump a box.
	Flight *trace.Recorder
	// StopOnViolation stops the engine at the first oracle violation, the
	// semantics the restore-to-prefix shrinker judges candidates under. A
	// minimized reproducer must be replayed with this set: its schedule is
	// 1-minimal for "a violation fires", not for whatever the run would go
	// on to do afterwards (a masked schedule may time out long after the
	// violation a full run would be classified by).
	StopOnViolation bool
}

func (c Cell) withDefaults() Cell {
	if c.Workload == "" {
		c.Workload = "churn"
	}
	if c.NCPUs == 0 {
		c.NCPUs = 6
	}
	if c.Scale == 0 {
		c.Scale = 0.5
	}
	if c.MaxVirtualTime == 0 {
		c.MaxVirtualTime = 30_000_000_000
	}
	return c
}

// app assembles the workload config for this cell.
func (c Cell) app() workload.AppConfig {
	fc := c.Fault
	return workload.AppConfig{
		NCPUs:              c.NCPUs,
		Seed:               c.Seed,
		Scale:              c.Scale,
		ShootdownOptions:   c.Shootdown,
		Oracle:             true,
		BugSkipReviveFlush: c.Bug,
		NumDevices:         c.Devices,
		BugSkipDevInval:    c.DevBug,
		MaxVirtualTime:     c.MaxVirtualTime,
		Faults:             &fc,
		ForcedTies:         c.Ties,
		Flight:             c.Flight,
	}
}

// Start assembles the cell's kernel with workers spawned but the engine
// not yet run, so callers can attach tie recorders or drive it in steps.
func (c Cell) Start() (*kernel.Kernel, error) {
	c = c.withDefaults()
	switch c.Workload {
	case "dma":
		return workload.StartDMA(c.app())
	default:
		return workload.StartChurn(c.app())
	}
}

// Run executes the cell to completion. obs, when non-nil, sees the
// finished kernel before the verdict is returned (metrics harvesting).
// The fired fault schedule is harvested unconditionally: failing runs are
// what the shrinker minimizes.
func (c Cell) Run(obs func(*kernel.Kernel)) (verdict, detail string, events []fault.Event) {
	k, err := c.Start()
	if err != nil {
		return VerdictError, err.Error(), nil
	}
	if c.StopOnViolation {
		armStopOnViolation(k)
	}
	runErr := k.Run()
	events = k.M.Faults().Events()
	if obs != nil {
		obs(k)
	}
	if runErr != nil {
		detail = runErr.Error()
	}
	return Classify(runErr), detail, events
}
