package explore

import (
	"reflect"
	"testing"

	"shootdown/internal/core"
	"shootdown/internal/fault"
)

// testWatchdog mirrors the chaos campaign's hardened protocol options.
var testWatchdog = core.Options{
	WatchdogTimeout:    1_000_000,
	WatchdogMaxRetries: 3,
	WatchdogBackoffMax: 8_000_000,
}

func hotplugCell(t *testing.T, seed int64, bug bool) Cell {
	t.Helper()
	fc, err := fault.ParseSpec("failstop=0.9,failby=8ms,revive=1,reviveafter=4ms")
	if err != nil {
		t.Fatal(err)
	}
	fc.Seed = seed + 257
	return Cell{Seed: seed, NCPUs: 4, Fault: fc, Bug: bug, Shootdown: testWatchdog}
}

// TestExplorerFindsAndShrinksViolation is the acceptance pin: with the
// stale-TLB-after-revive bug planted, the explorer must find an oracle
// violation within its budget and the restore-to-prefix shrinker must
// minimize it to a handful of fault events.
func TestExplorerFindsAndShrinksViolation(t *testing.T) {
	res, err := Explore(hotplugCell(t, 7, true), Options{Budget: 8, MaxShrinkRuns: 48})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("explorer found no violation with the bug planted")
	}
	if res.RacyTies == 0 {
		t.Fatal("no tie was broken inside an open shootdown race window — the race model saw nothing")
	}
	if res.Repro == nil {
		t.Fatal("no reproducer built from the violations")
	}
	if res.Repro.Verdict != VerdictOracle {
		t.Fatalf("reproducer verdict %q, want %q", res.Repro.Verdict, VerdictOracle)
	}
	if n := len(res.Repro.Keep); n == 0 || n > 5 {
		t.Fatalf("shrunk schedule has %d events, want 1..5 (from %d)", n, res.ScheduleLen)
	}
	m := res.Repro.Shrink
	if m == nil || m.Tests == 0 {
		t.Fatalf("reproducer carries no shrink-campaign metadata: %+v", m)
	}
	if m.RestoreHits == 0 {
		t.Fatalf("shrink campaign never reused a verified prefix: %+v", m)
	}

	// The reproducer must replay: same cell, masked to the kept events,
	// same forced ties, same verdict.
	rc := hotplugCell(t, 7, true)
	rc.Fault = res.Repro.Faults
	rc.Ties = res.Repro.Ties
	rc.StopOnViolation = true
	verdict, detail, _ := rc.Run(nil)
	if verdict != res.Repro.Verdict {
		t.Fatalf("reproducer replayed to %q (%s), recorded %q", verdict, detail, res.Repro.Verdict)
	}
}

// TestExplorerDeterministic pins the budget policy: same cell, same
// budget, same explored set — byte for byte, forks and reproducer alike.
func TestExplorerDeterministic(t *testing.T) {
	a, err := Explore(hotplugCell(t, 7, true), Options{Budget: 6, MaxShrinkRuns: 24})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(hotplugCell(t, 7, true), Options{Budget: 6, MaxShrinkRuns: 24})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical explorations diverged:\n  a: %+v\n  b: %+v", a, b)
	}
	if len(a.Forks) == 0 {
		t.Fatal("no forks explored — the determinism check is vacuous")
	}
}

// TestExplorerRequiresChaosSeed: seed 0 schedules FIFO, so there are no
// ties to fork; the explorer must refuse rather than silently do nothing.
func TestExplorerRequiresChaosSeed(t *testing.T) {
	c := hotplugCell(t, 7, false)
	c.Seed = 0
	if _, err := Explore(c, Options{}); err == nil {
		t.Fatal("explorer accepted seed 0")
	}
}

// TestCleanCellExploresWithoutViolations: without the planted bug the
// hardened protocol must survive every explored interleaving.
func TestCleanCellExploresWithoutViolations(t *testing.T) {
	res, err := Explore(hotplugCell(t, 11, false), Options{Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseVerdict != VerdictOK {
		t.Fatalf("base run failed without a bug: %s (%s)", res.BaseVerdict, res.BaseDetail)
	}
	if res.Violations != 0 {
		t.Fatalf("%d violations found in a clean cell (first repro: %+v)", res.Violations, res.Repro)
	}
	if len(res.Forks) == 0 {
		t.Fatal("no forks explored")
	}
}
