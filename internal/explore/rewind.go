package explore

import (
	"sort"

	"shootdown/internal/fault"
	"shootdown/internal/fault/shrink"
	"shootdown/internal/kernel"
	"shootdown/internal/oracle"
	"shootdown/internal/snap"
)

// Rewinder is the restore-to-prefix shrink harness. Classic ddmin replays
// every candidate from t=0 to the end of the run; the Rewinder exploits
// the mask-never-perturbs-RNG invariant: a candidate's world is
// byte-identical to the base failing run's up to the divergence step (the
// first masked event's effect), so the shared prefix needs no observation
// — only verification — and the suffix needs to run only far enough past
// the base failure point to reproduce it, with an oracle hook stopping
// the engine at the first violation instead of churning to completion.
// That turns a shrink campaign from O(n·run) into O(n·suffix) of *live*
// simulation, with each reused prefix pinned by a snapshot ladder.
//
// The ladder compares the semantic layers (machine, pmap, shootdown,
// sched, oracle) and excludes the engine and faults layers: masking a
// fail/revive plan event legitimately changes the lifecycle driver's next
// wake time and the injected-event log before the divergence boundary,
// while leaving every simulated artifact untouched. A semantic mismatch
// means the prefix-identity invariant broke, and the Rewinder falls back
// to a full unbounded replay for that candidate — the optimization is
// guarded, never assumed.
type Rewinder struct {
	cell        Cell // the base failing cell (Fault.Mask is the base mask)
	baseVerdict string
	baseEvents  []fault.Event
	baseStep    uint64 // engine step at which the base run ended

	ladder map[uint64]*snap.Snapshot // boundary step -> verified prefix state
	meta   shrink.Meta
	wall   func() int64 // optional wall clock in ms (injected by main)
}

// NewRewinder builds a shrink harness over one failing run: the cell that
// produced it, the verdict to reproduce, the fired fault schedule, and
// the engine step count at which the run ended. The cell's flight
// recorder is stripped — re-executions must not dump black boxes.
func NewRewinder(cell Cell, verdict string, events []fault.Event, endStep uint64) *Rewinder {
	cell = cell.withDefaults()
	cell.Flight = nil
	return &Rewinder{
		cell:        cell,
		baseVerdict: verdict,
		baseEvents:  events,
		baseStep:    endStep,
		ladder:      map[uint64]*snap.Snapshot{},
	}
}

// SetWallClock injects a millisecond wall clock for campaign accounting.
// The experiments layer is simulated code (no real time allowed); the CLI
// wires this from package main.
func (r *Rewinder) SetWallClock(fn func() int64) { r.wall = fn }

// Meta returns the campaign accounting accumulated so far.
func (r *Rewinder) Meta() shrink.Meta { return r.meta }

// Minimize runs restore-to-prefix ddmin over the base failing schedule
// and returns the 1-minimal subset with campaign accounting attached.
func (r *Rewinder) Minimize(maxRuns int) shrink.Result {
	var startMS int64
	if r.wall != nil {
		startMS = r.wall()
	}
	res := shrink.MinimizeFromPrefix(r.baseEvents, r.test, maxRuns)
	m := r.meta
	m.Tests = res.Tests
	if r.wall != nil {
		m.WallMS = r.wall() - startMS
	}
	res.Meta = &m
	return res
}

// suffixBound is how far past the base failure step a candidate may run
// before the Rewinder declares the failure not reproduced: masking events
// shifts schedules, so the bound is generous, but it is what turns
// would-be full runs (or 30-virtual-second timeouts) into short suffixes.
func (r *Rewinder) suffixBound() uint64 { return r.baseStep + r.baseStep/2 + 5_000 }

// test reports whether the candidate keep set still reproduces the base
// verdict, running only the divergent suffix live.
func (r *Rewinder) test(keep []fault.EventID, divergeStep uint64) bool {
	all := make([]fault.EventID, len(r.baseEvents))
	for i, e := range r.baseEvents {
		all[i] = e.ID
	}
	mask := append(append([]fault.EventID(nil), r.cell.Fault.Mask...), shrink.MaskFor(all, keep)...)
	boundary := divergeStep
	if boundary > r.baseStep {
		boundary = r.baseStep
	}
	return r.runCandidate(mask, boundary) == r.baseVerdict
}

// runCandidate executes one masked world: replay to the divergence
// boundary, verify the prefix against the ladder, then run the suffix
// bounded with early exit on the first oracle violation.
func (r *Rewinder) runCandidate(mask []fault.EventID, boundary uint64) string {
	cfg := r.cell
	cfg.Fault.Mask = mask
	k, err := cfg.Start()
	if err != nil {
		return VerdictError
	}
	armStopOnViolation(k)
	if err := k.RunToStep(boundary); err != nil {
		// The run died inside the prefix (deadlock, time bound, panic).
		return Classify(k.Finish(err))
	}
	if k.Eng.Stopped() || k.Eng.StepCount() < boundary {
		// The run ended before the boundary: completed, or stopped on a
		// violation. Settle it and judge.
		return Classify(k.Finish(nil))
	}
	r.checkLadder(k, boundary)
	bound := r.suffixBound()
	err = k.RunToStep(bound)
	r.meta.SuffixSteps += k.Eng.StepCount() - boundary
	if err != nil {
		return Classify(k.Finish(err))
	}
	if !k.Eng.Stopped() && k.Eng.StepCount() >= bound {
		// Suffix budget exhausted without reproducing the base failure:
		// the candidate does not fail. The paused world is abandoned, as
		// the engine already abandons deadlocked worlds.
		return VerdictOK
	}
	return Classify(k.Finish(nil))
}

// checkLadder verifies the candidate's replayed prefix against the
// snapshot ladder, seeding the rung on first visit to a boundary.
func (r *Rewinder) checkLadder(k *kernel.Kernel, boundary uint64) {
	s, err := k.Snapshot()
	if err != nil {
		r.meta.FullReplays++
		return
	}
	rung := r.ladder[boundary]
	if rung == nil {
		r.ladder[boundary] = s
		r.meta.FullReplays++
		return
	}
	if ok, _ := semanticEqual(rung, s); ok {
		r.meta.RestoreHits++
		r.meta.PrefixStepsReused += boundary
		return
	}
	// Prefix-identity invariant broke for this candidate; count it as a
	// full replay. The run proceeds anyway — the suffix verdict is still
	// deterministic — but no prefix reuse is claimed.
	r.meta.FullReplays++
}

// volatileLayers are snapshot layers that legitimately differ between a
// masked candidate and the base run before the divergence boundary (see
// the Rewinder doc).
var volatileLayers = map[string]bool{"engine": true, "faults": true}

// semanticEqual compares two snapshots on their semantic layers only.
func semanticEqual(a, b *snap.Snapshot) (bool, string) {
	if a.Step != b.Step {
		return false, "step differs"
	}
	for _, la := range a.Layers {
		if volatileLayers[la.Name] {
			continue
		}
		lb := b.Layer(la.Name)
		if lb == nil {
			return false, "layer " + la.Name + " missing"
		}
		if string(la.Data) != string(lb) {
			return false, "layer " + la.Name + " differs"
		}
	}
	return true, ""
}

// armStopOnViolation makes the first oracle violation stop the engine at
// the next event boundary, so a failing candidate ends in O(time to
// violation) instead of running its workload to completion. The verdict
// still comes from Finish -> Oracle.Check, exactly as in a full run.
func armStopOnViolation(k *kernel.Kernel) {
	if k.Oracle == nil {
		return
	}
	prev := k.Oracle.OnViolation
	k.Oracle.OnViolation = func(v oracle.Violation) {
		if prev != nil {
			prev(v)
		}
		// Stopping the engine is this hook's entire purpose: the explorer
		// wants the run to end at the violation, not observe it silently.
		//lint:allow hookpurity deliberately impure: stop-on-violation exists to halt the engine early
		k.Eng.Stop()
	}
}

// BuildRepro packages a minimized failure for replay: the cell's fault
// config with the mask set so exactly the kept events fire, the forced
// ties that steer the schedule (explorer finds), and the shrink-campaign
// accounting.
func BuildRepro(c Cell, verdict string, events []fault.Event, keep []fault.EventID, meta *shrink.Meta) shrink.Repro {
	c = c.withDefaults()
	all := make([]fault.EventID, len(events))
	for i, e := range events {
		all[i] = e.ID
	}
	cfg := c.Fault
	cfg.Mask = append(append([]fault.EventID(nil), cfg.Mask...), shrink.MaskFor(all, keep)...)
	sort.Slice(cfg.Mask, func(i, j int) bool {
		if cfg.Mask[i].Kind != cfg.Mask[j].Kind {
			return cfg.Mask[i].Kind < cfg.Mask[j].Kind
		}
		return cfg.Mask[i].Seq < cfg.Mask[j].Seq
	})
	r := shrink.Repro{
		Version:  shrink.ReproVersion,
		Workload: c.Workload,
		Seed:     c.Seed,
		NCPUs:    c.NCPUs,
		Devices:  c.Devices,
		Faults:   cfg,
		Keep:     keep,
		Verdict:  verdict,
		Ties:     c.Ties,
		Shrink:   meta,
	}
	switch {
	case c.DevBug:
		r.Bug = "skip-dev-inval"
	case c.Bug:
		r.Bug = "skip-revive-flush"
	}
	return r
}
