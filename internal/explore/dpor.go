package explore

import (
	"fmt"

	"shootdown/internal/fault"
	"shootdown/internal/fault/shrink"
	"shootdown/internal/kernel"
	"shootdown/internal/sim"
)

// Tie is one recorded chaos tie decision from the base run, tagged with
// whether the shootdown race window was open when it was broken.
type Tie struct {
	sim.TieDecision
	Racy bool `json:"racy,omitempty"`
}

// Fork is one explored alternative schedule: the base run's tie picks up
// to (not including) ordinal Seq, then Pick instead of the base choice,
// then free chaos.
type Fork struct {
	Seq     uint64 `json:"seq"`  // the flipped tie's ordinal
	Pick    int    `json:"pick"` // the branch taken instead
	Ties    []int  `json:"ties"` // full forced prefix handed to the engine
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`
	// EndStep and Events carry what a shrink campaign needs when this
	// fork violated.
	EndStep uint64 `json:"end_step"`
}

// Result is one exploration campaign's outcome.
type Result struct {
	Seed   int64 `json:"seed"`
	NCPUs  int   `json:"ncpus"`
	Budget int   `json:"budget"`

	BaseVerdict string `json:"base_verdict"`
	BaseDetail  string `json:"base_detail,omitempty"`
	BaseSteps   uint64 `json:"base_steps"`

	TotalTies int    `json:"total_ties"`
	RacyTies  int    `json:"racy_ties"`
	Forks     []Fork `json:"forks,omitempty"`

	// Violations counts failing schedules found (base run included);
	// DistinctViolations dedups by failure detail.
	Violations         int `json:"violations"`
	DistinctViolations int `json:"distinct_violations"`

	// Repro is the first violation found, shrunk through the
	// restore-to-prefix pipeline; ScheduleLen is its pre-shrink size.
	Repro       *shrink.Repro `json:"repro,omitempty"`
	ScheduleLen int           `json:"schedule_len,omitempty"`
}

// Options tunes an exploration campaign.
type Options struct {
	// Budget bounds the number of forked schedules (default 24). The same
	// budget and seed always explore the byte-identical set of schedules.
	Budget int
	// MaxShrinkRuns bounds the shrink campaign on the first violation
	// (default 48).
	MaxShrinkRuns int
	// WallClock, when set, is a millisecond clock injected by package
	// main for shrink-campaign accounting.
	WallClock func() int64
}

func (o Options) withDefaults() Options {
	if o.Budget == 0 {
		o.Budget = 24
	}
	if o.MaxShrinkRuns == 0 {
		o.MaxShrinkRuns = 48
	}
	return o
}

// failing is one violating schedule queued for the shrink pipeline.
type failing struct {
	cell    Cell
	verdict string
	detail  string
	events  []fault.Event
	endStep uint64
}

// Explore is the DPOR-lite campaign: run the base schedule once,
// recording every chaos tie and whether the shootdown race window was
// open; then, racy tie by racy tie and branch by branch in deterministic
// order, fork the schedule by forcing the base prefix plus the flipped
// pick and replaying. Every oracle violation found feeds the
// restore-to-prefix shrink -> reproducer pipeline (the first one is
// minimized; all are counted).
//
// Exploration is exhaustive-within-budget, not heuristic: for B budget
// the forks are the first B (tie, alternative-pick) pairs in (ordinal,
// pick) order, so two campaigns with equal cell and budget explore the
// byte-identical set of schedules.
func Explore(cell Cell, opt Options) (Result, error) {
	cell = cell.withDefaults()
	opt = opt.withDefaults()
	res := Result{Seed: cell.Seed, NCPUs: cell.NCPUs, Budget: opt.Budget}
	if cell.Seed == 0 {
		return res, fmt.Errorf("explore: chaos seed required (seed 0 schedules FIFO and never ties)")
	}

	// Base run, instrumented: the tie log is the set of fork points.
	k, err := cell.Start()
	if err != nil {
		return res, fmt.Errorf("explore: base run: %w", err)
	}
	var ties []Tie
	k.Eng.SetTieRecorder(func(d sim.TieDecision) {
		ties = append(ties, Tie{TieDecision: d, Racy: k.Shoot != nil && k.Shoot.RaceWindowOpen()})
	})
	runErr := k.Run()
	res.BaseVerdict = Classify(runErr)
	if runErr != nil {
		res.BaseDetail = runErr.Error()
	}
	res.BaseSteps = k.Eng.StepCount()
	res.TotalTies = len(ties)
	basePicks := make([]int, len(ties))
	for i, t := range ties {
		basePicks[i] = t.Pick
		if t.Racy {
			res.RacyTies++
		}
	}

	var fails []failing
	seen := map[string]bool{}
	note := func(f failing) {
		res.Violations++
		if !seen[firstLine(f.detail)] {
			seen[firstLine(f.detail)] = true
			res.DistinctViolations++
		}
		fails = append(fails, f)
	}
	if res.BaseVerdict != VerdictOK {
		note(failing{cell: cell, verdict: res.BaseVerdict, detail: res.BaseDetail,
			events: k.M.Faults().Events(), endStep: res.BaseSteps})
	}

	// Fork each racy tie down every untaken branch, budget-capped.
	for i, t := range ties {
		if len(res.Forks) >= opt.Budget {
			break
		}
		if !t.Racy || len(t.Tied) < 2 {
			continue
		}
		for p := 0; p < len(t.Tied); p++ {
			if p == t.Pick {
				continue
			}
			if len(res.Forks) >= opt.Budget {
				break
			}
			forced := append(append([]int(nil), basePicks[:i]...), p)
			fc := cell
			fc.Ties = forced
			fc.Flight = nil
			var endStep uint64
			verdict, detail, events := fc.Run(func(kk *kernel.Kernel) {
				endStep = kk.Eng.StepCount()
			})
			fork := Fork{Seq: t.Seq, Pick: p, Ties: forced, Verdict: verdict,
				Detail: firstLine(detail), EndStep: endStep}
			res.Forks = append(res.Forks, fork)
			if verdict != VerdictOK {
				note(failing{cell: fc, verdict: verdict, detail: detail, events: events, endStep: endStep})
			}
		}
	}

	// Shrink the first violation through the restore-to-prefix pipeline.
	if len(fails) > 0 {
		f := fails[0]
		res.ScheduleLen = len(f.events)
		rw := NewRewinder(f.cell, f.verdict, f.events, f.endStep)
		if opt.WallClock != nil {
			rw.SetWallClock(opt.WallClock)
		}
		sres := rw.Minimize(opt.MaxShrinkRuns)
		repro := BuildRepro(f.cell, f.verdict, f.events, sres.Keep, sres.Meta)
		res.Repro = &repro
	}
	return res, nil
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
