// Package stats provides the small set of statistics used by the paper's
// evaluation: mean, standard deviation, median, percentiles, and a
// least-squares linear fit (used for the Figure 2 trend line).
//
// The paper reports results as mean±standard deviation, notes that most time
// distributions are right-skewed (median < mean), and flags some aggregates
// as "NM" (not meaningful) when the sample is too small or the distribution
// is unusual; Summary mirrors that reporting style.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations.
type Sample struct {
	xs []float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddAll appends many observations.
func (s *Sample) AddAll(xs ...float64) { s.xs = append(s.xs, xs...) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 { return Mean(s.xs) }

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Sample) StdDev() float64 { return StdDev(s.xs) }

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return Percentile(s.xs, 50) }

// Percentile returns the p-th percentile (0..100) by linear interpolation.
func (s *Sample) Percentile(p float64) float64 { return Percentile(s.xs, p) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 {
	t := 0.0
	for _, x := range s.xs {
		t += x
	}
	return t
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator);
// it returns 0 for fewer than two observations.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fit is a least-squares linear fit y = Intercept + Slope*x.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LeastSquares fits a line to (xs[i], ys[i]) by ordinary least squares.
// It returns an error if the inputs differ in length, have fewer than two
// points, or have zero variance in x.
func LeastSquares(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: zero variance in x over %v points", n)
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // all ys equal and the fit is exact
	}
	return fit, nil
}

// At evaluates the fitted line at x.
func (f Fit) At(x float64) float64 { return f.Intercept + f.Slope*x }

// Summary is a one-line digest in the paper's reporting style.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Median float64
	P10    float64
	P90    float64
	// NM reports whether median/percentiles are Not Meaningful: too few
	// samples, or a strongly bimodal distribution (the paper's Agora case).
	NM bool
}

// Summarize computes a Summary of xs. Percentile fields are flagged NM when
// there are fewer than minMeaningful samples or the sample is bimodal.
func Summarize(xs []float64, minMeaningful int) Summary {
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Median: Percentile(xs, 50),
		P10:    Percentile(xs, 10),
		P90:    Percentile(xs, 90),
	}
	if len(xs) < minMeaningful || Bimodal(xs) {
		s.NM = true
	}
	return s
}

// Bimodal applies a crude dip heuristic: split the sorted sample at its
// largest gap; if both halves are substantial (>= 20% of the data each) and
// the gap exceeds 3x the mean within-half neighbour spacing, call it bimodal.
// This is only used to decide when medians are "not meaningful" in the sense
// of the paper's Table 2 discussion of Agora.
func Bimodal(xs []float64) bool {
	if len(xs) < 10 {
		return false
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	gapIdx, gap := 0, 0.0
	for i := 1; i < len(sorted); i++ {
		if d := sorted[i] - sorted[i-1]; d > gap {
			gap, gapIdx = d, i
		}
	}
	lo, hi := sorted[:gapIdx], sorted[gapIdx:]
	if len(lo) < len(sorted)/5 || len(hi) < len(sorted)/5 {
		return false
	}
	span := sorted[len(sorted)-1] - sorted[0]
	if span <= 0 {
		return false
	}
	// Mean spacing if the data were spread evenly, excluding the big gap.
	rest := span - gap
	meanSpacing := rest / float64(len(sorted)-2)
	return gap > 6*meanSpacing && gap > 0.25*span
}

// String formats the summary as "mean±std (median md, n=N)" with NM noted.
func (s Summary) String() string {
	if s.NM {
		return fmt.Sprintf("%.0f±%.0f (median NM, n=%d)", s.Mean, s.StdDev, s.N)
	}
	return fmt.Sprintf("%.0f±%.0f (median %.0f, n=%d)", s.Mean, s.StdDev, s.Median, s.N)
}
