package stats

import (
	"math"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 1000, 5)
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram reported observations")
	}
	h.ObserveAll(10, 20, 30)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 60 || h.Mean() != 20 {
		t.Fatalf("Sum/Mean = %g/%g", h.Sum(), h.Mean())
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("Min/Max = %g/%g", h.Min(), h.Max())
	}
}

func TestHistogramOutOfRangeNeverLost(t *testing.T) {
	h := NewHistogram(10, 100, 1)
	h.ObserveAll(0.001, 10_000_000) // far below and far above the range
	bks := h.Buckets()
	last := bks[len(bks)-1]
	if !math.IsInf(last.UpperBound, 1) {
		t.Fatal("last bucket is not +Inf")
	}
	if last.Cumulative != h.Count() || h.Count() != 2 {
		t.Fatalf("+Inf cumulative = %d, Count = %d", last.Cumulative, h.Count())
	}
}

func TestHistogramBucketsMonotonic(t *testing.T) {
	h := NewHistogram(1, 100_000, 5)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	var prevUB float64
	var prevCum uint64
	for i, bk := range h.Buckets() {
		if i > 0 && !math.IsInf(bk.UpperBound, 1) && bk.UpperBound <= prevUB {
			t.Fatalf("bounds not ascending at bucket %d", i)
		}
		if bk.Cumulative < prevCum {
			t.Fatalf("cumulative counts decreased at bucket %d", i)
		}
		prevUB, prevCum = bk.UpperBound, bk.Cumulative
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 100_000, 10)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct {
		q      float64
		lo, hi float64 // acceptance interval for a bucketed estimate
	}{
		{0, 1, 1},
		{0.5, 350, 700},
		{0.9, 700, 1000},
		{1, 1000, 1000},
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Fatalf("Quantile(%g) = %g, want in [%g, %g]", tc.q, got, tc.lo, tc.hi)
		}
	}
	empty := NewHistogram(1, 10, 1)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 1000, 5)
	b := NewHistogram(1, 1000, 5)
	a.ObserveAll(5, 50, 500)
	b.ObserveAll(1, 2, 900, 5000) // includes an overflow observation
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != 7 {
		t.Fatalf("Count = %d, want 7", a.Count())
	}
	if a.Sum() != 5+50+500+1+2+900+5000 {
		t.Fatalf("Sum = %g", a.Sum())
	}
	if a.Min() != 1 || a.Max() != 5000 {
		t.Fatalf("Min/Max = %g/%g", a.Min(), a.Max())
	}
	// The merged cumulative counts must equal observing everything into one
	// histogram directly.
	c := NewHistogram(1, 1000, 5)
	c.ObserveAll(5, 50, 500, 1, 2, 900, 5000)
	got, want := a.Buckets(), c.Buckets()
	if len(got) != len(want) {
		t.Fatalf("bucket count %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// Merging empty and nil histograms is a no-op.
	before := a.Count()
	if err := a.Merge(NewHistogram(1, 1000, 5)); err != nil {
		t.Fatalf("Merge(empty): %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("Merge(nil): %v", err)
	}
	if a.Count() != before {
		t.Fatal("no-op merges changed the count")
	}
}

func TestHistogramMergeRejectsMismatchedLayout(t *testing.T) {
	a := NewHistogram(1, 1000, 5)
	b := NewHistogram(1, 1000, 10)
	b.Observe(10)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different bucket counts should fail")
	}
	// Same bucket count (same decade span and resolution) but shifted
	// bounds: must still be rejected.
	c := NewHistogram(2, 2000, 5)
	c.Observe(10)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging different bounds should fail")
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	// All mass in one bucket: the interpolated quantile must move smoothly
	// between that bucket's effective bounds rather than snapping to an edge.
	h := NewHistogram(1, 1000, 1)
	for i := 0; i < 100; i++ {
		h.Observe(55)
	}
	if got := h.Quantile(0.5); got != 55 {
		t.Fatalf("single-valued Quantile(0.5) = %g, want clamped to 55", got)
	}
	// Uniform 1..1000: quantiles must be strictly increasing in q.
	u := NewHistogram(1, 100_000, 10)
	for i := 1; i <= 1000; i++ {
		u.Observe(float64(i))
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := u.Quantile(q)
		if v <= prev {
			t.Fatalf("Quantile(%g) = %g not increasing (prev %g)", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramInvalidRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewHistogram(0, 10, 5)
}
