package stats

import (
	"math"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 1000, 5)
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram reported observations")
	}
	h.ObserveAll(10, 20, 30)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 60 || h.Mean() != 20 {
		t.Fatalf("Sum/Mean = %g/%g", h.Sum(), h.Mean())
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("Min/Max = %g/%g", h.Min(), h.Max())
	}
}

func TestHistogramOutOfRangeNeverLost(t *testing.T) {
	h := NewHistogram(10, 100, 1)
	h.ObserveAll(0.001, 10_000_000) // far below and far above the range
	bks := h.Buckets()
	last := bks[len(bks)-1]
	if !math.IsInf(last.UpperBound, 1) {
		t.Fatal("last bucket is not +Inf")
	}
	if last.Cumulative != h.Count() || h.Count() != 2 {
		t.Fatalf("+Inf cumulative = %d, Count = %d", last.Cumulative, h.Count())
	}
}

func TestHistogramBucketsMonotonic(t *testing.T) {
	h := NewHistogram(1, 100_000, 5)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	var prevUB float64
	var prevCum uint64
	for i, bk := range h.Buckets() {
		if i > 0 && !math.IsInf(bk.UpperBound, 1) && bk.UpperBound <= prevUB {
			t.Fatalf("bounds not ascending at bucket %d", i)
		}
		if bk.Cumulative < prevCum {
			t.Fatalf("cumulative counts decreased at bucket %d", i)
		}
		prevUB, prevCum = bk.UpperBound, bk.Cumulative
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 100_000, 10)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct {
		q      float64
		lo, hi float64 // acceptance interval for a bucketed estimate
	}{
		{0, 1, 1},
		{0.5, 350, 700},
		{0.9, 700, 1000},
		{1, 1000, 1000},
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Fatalf("Quantile(%g) = %g, want in [%g, %g]", tc.q, got, tc.lo, tc.hi)
		}
	}
	empty := NewHistogram(1, 10, 1)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramInvalidRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewHistogram(0, 10, 5)
}
