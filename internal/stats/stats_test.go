package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestStdDevKnown(t *testing.T) {
	// Sample std-dev of {2,4,4,4,5,5,7,9} is sqrt(32/7).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestStdDevDegenerate(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev of singleton = %v, want 0", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Fatalf("StdDev(nil) = %v, want 0", got)
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Fatalf("P100 = %v, want 9", got)
	}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("P50 = %v, want 5", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 25); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("P25 = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 430 + 55x, the paper's Figure 2 trend line.
	var xs, ys []float64
	for n := 1; n <= 12; n++ {
		xs = append(xs, float64(n))
		ys = append(ys, 430+55*float64(n))
	}
	fit, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 55, 1e-9) || !almostEqual(fit.Intercept, 430, 1e-9) {
		t.Fatalf("fit = %+v, want slope 55 intercept 430", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.At(100); !almostEqual(got, 5930, 1e-6) {
		t.Fatalf("At(100) = %v, want 5930", got)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares([]float64{1}, []float64{2}); err == nil {
		t.Fatal("want error for single point")
	}
	if _, err := LeastSquares([]float64{1, 2}, []float64{2}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	if _, err := LeastSquares([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Fatal("want error for zero x variance")
	}
}

func TestSampleAccumulates(t *testing.T) {
	var s Sample
	s.Add(1)
	s.AddAll(2, 3)
	if s.N() != 3 {
		t.Fatalf("N = %d, want 3", s.N())
	}
	if s.Sum() != 6 {
		t.Fatalf("Sum = %v, want 6", s.Sum())
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("Min/Max = %v/%v, want 1/3", s.Min(), s.Max())
	}
	if s.Mean() != 2 {
		t.Fatalf("Mean = %v, want 2", s.Mean())
	}
	vs := s.Values()
	vs[0] = 99
	if s.Min() != 1 {
		t.Fatal("Values must return a copy")
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Median() != 0 {
		t.Fatal("empty sample aggregates should be 0")
	}
}

func TestSummarizeSkewed(t *testing.T) {
	// Right-skewed data: median should be below the mean, as in the
	// paper's shootdown time distributions.
	xs := []float64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 2000}
	s := Summarize(xs, 5)
	if s.NM {
		t.Fatalf("unexpected NM: %+v", s)
	}
	if s.Median >= s.Mean {
		t.Fatalf("median %v should be < mean %v for right-skewed data", s.Median, s.Mean)
	}
	if s.P10 > s.Median || s.Median > s.P90 {
		t.Fatalf("percentile ordering violated: %+v", s)
	}
}

func TestSummarizeNMSmall(t *testing.T) {
	s := Summarize([]float64{1, 2}, 5)
	if !s.NM {
		t.Fatal("want NM for tiny sample")
	}
	if s.String() == "" {
		t.Fatal("String should format")
	}
}

func TestBimodal(t *testing.T) {
	var uni, bi []float64
	for i := 0; i < 50; i++ {
		uni = append(uni, 100+float64(i))
		if i%2 == 0 {
			bi = append(bi, 100+float64(i))
		} else {
			bi = append(bi, 5000+float64(i))
		}
	}
	if Bimodal(uni) {
		t.Fatal("uniform data misclassified as bimodal")
	}
	if !Bimodal(bi) {
		t.Fatal("two-cluster data should be bimodal")
	}
	if Bimodal([]float64{1, 2}) {
		t.Fatal("tiny samples are never bimodal")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		return v1 <= v2 && lo <= v1 && v2 <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: least-squares recovers a noiseless line exactly.
func TestQuickLeastSquaresRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		slope := rng.Float64()*200 - 100
		intercept := rng.Float64()*1000 - 500
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64() // strictly increasing
			ys[i] = intercept + slope*xs[i]
		}
		fit, err := LeastSquares(xs, ys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !almostEqual(fit.Slope, slope, 1e-6*(1+math.Abs(slope))) ||
			!almostEqual(fit.Intercept, intercept, 1e-5*(1+math.Abs(intercept))) {
			t.Fatalf("trial %d: fit %+v, want slope %v intercept %v", trial, fit, slope, intercept)
		}
	}
}

// Property: mean is within [min, max] and shifting data shifts the mean.
func TestQuickMeanShift(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.Abs(x) < 1e12 && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 1000
		}
		return almostEqual(Mean(shifted), m+1000, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
