package stats

import (
	"fmt"
	"math"
)

// Histogram accumulates observations into fixed log-spaced buckets, so
// latency distributions (right-skewed, spanning decades — exactly what the
// paper's Tables 2-4 report) can be exported without retaining every sample.
// Buckets are defined once at construction; observing is O(log buckets) and
// allocation-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1; counts[len(bounds)] is the overflow
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram with perDecade log-spaced bucket upper
// bounds covering [lo, hi]. lo and hi must be positive with lo < hi;
// observations outside the range land in the first or overflow bucket, so
// nothing is ever lost. perDecade defaults to 5 if nonpositive.
func NewHistogram(lo, hi float64, perDecade int) *Histogram {
	if lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram range [%g, %g]", lo, hi))
	}
	if perDecade <= 0 {
		perDecade = 5
	}
	step := math.Pow(10, 1/float64(perDecade))
	var bounds []float64
	for b := lo; b < hi*(1+1e-12); b *= step {
		bounds = append(bounds, b)
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	// Binary search for the first bound >= x.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	h.count++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// ObserveAll records many observations.
func (h *Histogram) ObserveAll(xs ...float64) {
	for _, x := range xs {
		h.Observe(x)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Merge folds other's observations into h. Both histograms must have been
// built with the same bucket layout (identical NewHistogram parameters);
// mismatched layouts are rejected rather than silently misbinned. Merging
// a nil or empty histogram is a no-op.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if len(other.bounds) != len(h.bounds) {
		return fmt.Errorf("stats: merging histograms with %d vs %d buckets",
			len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("stats: merging histograms with different bounds at bucket %d (%g vs %g)",
				i, h.bounds[i], other.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// Bucket is one histogram bucket in cumulative (Prometheus "le") form.
type Bucket struct {
	UpperBound float64 // math.Inf(1) for the overflow bucket
	Cumulative uint64  // observations <= UpperBound
}

// Buckets returns the cumulative bucket counts, ending with the +Inf bucket
// (whose Cumulative equals Count).
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out = append(out, Bucket{UpperBound: ub, Cumulative: cum})
	}
	return out
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation within
// the containing bucket. It returns 0 with no observations; estimates are
// clamped to [Min, Max].
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		if float64(cum+c) < target {
			cum += c
			continue
		}
		// The quantile lies in bucket i: interpolate across its width.
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		frac := 0.0
		if c > 0 {
			frac = (target - float64(cum)) / float64(c)
		}
		v := lo + frac*(hi-lo)
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}
