#!/usr/bin/env bash
# Benchmark runner (`make bench`): executes the paper-artifact benchmarks
# and the Figure 2 sweep, assembles both into the next free BENCH_<n>.json
# at the repo root, and prints the delta table against the previous
# snapshot so successive changes leave a comparable trajectory of headline
# numbers.
#
# Env knobs: BENCH_SEED (default 42), BENCH_RUNS (runs per Figure 2 point,
# default 3).
set -euo pipefail
cd "$(dirname "$0")/.."

seed="${BENCH_SEED:-42}"
runs="${BENCH_RUNS:-3}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== go test -bench (paper artifacts)"
go test -bench=. -benchmem -run='^$' . | tee "$tmp/bench.txt"

echo "== Figure 2 sweep (seed $seed, $runs runs/point)"
go run ./cmd/shootdownsim -seed "$seed" -runs "$runs" -format json fig2 > "$tmp/fig2.json"

n=0
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
out="BENCH_${n}.json"
go run ./scripts/benchreport report "$tmp/bench.txt" "$tmp/fig2.json" > "$out"
echo "wrote $out"

if [ "$n" -gt 0 ]; then
	prev="BENCH_$((n - 1)).json"
	echo
	echo "== delta vs $prev"
	go run ./scripts/benchreport diff "$prev" "$out"
fi
