#!/usr/bin/env bash
# Benchmark runner (`make bench`): executes the paper-artifact benchmarks
# and the Figure 2 sweep, assembles both into the next free BENCH_<n>.json
# at the repo root, and prints the delta table against the previous
# snapshot so successive changes leave a comparable trajectory of headline
# numbers.
#
# Each report carries provenance (go version, GOMAXPROCS, commit) and the
# host-cost/v1 allocation-attribution artifact, so `benchreport trend` can
# tell a code change from a toolchain or machine change and name the
# allocation sites behind a B/op step.
#
# Env knobs: BENCH_SEED (default 42), BENCH_RUNS (runs per Figure 2 point,
# default 3).
set -euo pipefail
cd "$(dirname "$0")/.."

seed="${BENCH_SEED:-42}"
runs="${BENCH_RUNS:-3}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo "")

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== go test -bench (paper artifacts)"
go test -bench=. -benchmem -run='^$' . | tee "$tmp/bench.txt"

echo "== Figure 2 sweep (seed $seed, $runs runs/point)"
go run ./cmd/shootdownsim -seed "$seed" -runs "$runs" -format json fig2 > "$tmp/fig2.json"

echo "== host-cost attribution (seed $seed, $runs runs)"
go run ./cmd/shootdownsim -seed "$seed" -runs "$runs" -commit "$commit" \
	-hostcost "$tmp/hostcost.json" hostcost
go run ./cmd/tlbtrace hostcost -validate "$tmp/hostcost.json"

n=0
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
out="BENCH_${n}.json"
go run ./scripts/benchreport report -commit "$commit" -hostcost "$tmp/hostcost.json" \
	"$tmp/bench.txt" "$tmp/fig2.json" > "$out"
echo "wrote $out"

if [ "$n" -gt 0 ]; then
	prev="BENCH_$((n - 1)).json"
	echo
	echo "== delta vs $prev"
	go run ./scripts/benchreport diff "$prev" "$out"
	echo
	echo "== trajectory"
	go run ./scripts/benchreport trend
fi
