// Command validatetrace is the CI smoke check for the observability layer:
// it verifies that a Chrome trace-event file emitted by shootdownsim/tlbtest
// is valid JSON with span events from every instrumented layer, and
// (with -results) that a -format json results file parses and is non-empty.
//
// Usage: validatetrace [-results results.json] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	results := flag.String("results", "", "also validate a shootdownsim -format json output file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: validatetrace [-results results.json] trace.json")
		os.Exit(2)
	}
	if err := checkTrace(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "validatetrace: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	if *results != "" {
		if err := checkResults(*results); err != nil {
			fmt.Fprintf(os.Stderr, "validatetrace: %s: %v\n", *results, err)
			os.Exit(1)
		}
	}
	fmt.Println("validatetrace: ok")
}

func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	cats := map[string]bool{}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Cat != "" {
			cats[ev.Cat] = true
		}
		phases[ev.Ph]++
	}
	for _, want := range []string{"sim", "machine", "shootdown", "tlb"} {
		if !cats[want] {
			return fmt.Errorf("no %q events (categories seen: %v)", want, keys(cats))
		}
	}
	if phases["B"] == 0 || phases["B"] != phases["E"] {
		return fmt.Errorf("unbalanced spans: %d begin vs %d end", phases["B"], phases["E"])
	}
	fmt.Printf("validatetrace: %d events, categories %v, %d spans\n",
		len(doc.TraceEvents), keys(cats), phases["B"])
	return nil
}

func checkResults(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Experiments []struct {
			Name   string          `json:"name"`
			Result json.RawMessage `json:"result"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid results JSON: %w", err)
	}
	if len(doc.Experiments) == 0 {
		return fmt.Errorf("no experiments in results file")
	}
	for _, e := range doc.Experiments {
		if e.Name == "" || len(e.Result) == 0 {
			return fmt.Errorf("experiment entry missing name or result")
		}
	}
	return nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
