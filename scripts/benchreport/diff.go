package main

// The diff subcommand: compare two BENCH_<n>.json reports and gate CI on
// regressions. Only the benchmarks present in both reports are compared,
// so the quick subset check.sh snapshots gates against the matching rows
// of the full committed report. Higher is worse for every gated metric
// (ns/op, B/op, allocs/op); the paper's custom metrics are descriptive,
// not gated, because their direction depends on the experiment.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// gatedMetrics are compared in this order; for each, a higher value in the
// new report is a regression.
var gatedMetrics = []string{"ns/op", "B/op", "allocs/op"}

// delta is one (benchmark, metric) comparison row.
type delta struct {
	Name   string
	Metric string
	Old    float64
	New    float64
	// Pct is the relative change in percent; +Inf when Old is zero and
	// New is not (there is no baseline to scale by).
	Pct float64
}

// regressed reports whether this row is a regression past the threshold.
func (d delta) regressed(thresholdPct float64) bool {
	return d.Pct > thresholdPct
}

// pctChange returns the relative change in percent, +Inf for a zero
// baseline growing, and 0 when both sides are zero.
func pctChange(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (newV - oldV) / oldV * 100
}

// normName strips the -GOMAXPROCS suffix go test appends on multi-CPU
// machines, so reports produced on different machines still align. When
// the report recorded its GOMAXPROCS, only that exact suffix is stripped —
// a sub-benchmark whose own name ends in a dashed number
// ("BenchmarkScale/cpus-32") must survive intact. Reports predating the
// provenance field fall back to stripping any trailing integer, the old
// (over-eager) behavior, since nothing better is known about them.
func normName(name string, procs int) string {
	if procs > 0 {
		return strings.TrimSuffix(name, fmt.Sprintf("-%d", procs))
	}
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare builds the delta rows for the benchmarks both reports carry, in
// the old report's order (deterministic output), and returns how many
// benchmarks matched. Names are compared with the -GOMAXPROCS suffix
// stripped (each report's own recorded GOMAXPROCS).
func compare(oldDoc, newDoc *benchDoc) (rows []delta, matched int) {
	newBy := map[string]benchLine{}
	for _, b := range newDoc.Benchmarks {
		newBy[normName(b.Name, newDoc.GoMaxProcs)] = b
	}
	for _, ob := range oldDoc.Benchmarks {
		name := normName(ob.Name, oldDoc.GoMaxProcs)
		nb, ok := newBy[name]
		if !ok {
			continue
		}
		matched++
		for _, m := range gatedMetrics {
			ov, okOld := ob.Metrics[m]
			nv, okNew := nb.Metrics[m]
			if !okOld || !okNew {
				continue
			}
			rows = append(rows, delta{Name: name, Metric: m, Old: ov, New: nv, Pct: pctChange(ov, nv)})
		}
	}
	return rows, matched
}

// gate returns the rows that fail the build: regressions past the
// threshold whose benchmark is not named in the allow set.
func gate(rows []delta, thresholdPct float64, allow map[string]bool) []delta {
	var out []delta
	for _, d := range rows {
		if d.regressed(thresholdPct) && !allow[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

// loadAllow reads the allow file: one benchmark name per line, '#'
// comments and blank lines ignored. A missing file is an empty set.
func loadAllow(path string) (map[string]bool, error) {
	allow := map[string]bool{}
	if path == "" {
		return allow, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return allow, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allow[line] = true
	}
	return allow, sc.Err()
}

// formatDeltas renders the per-benchmark delta table. Rows that regressed
// past the threshold are tagged, and allowed ones say so.
func formatDeltas(rows []delta, thresholdPct float64, allow map[string]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, d := range rows {
		tag := ""
		if d.regressed(thresholdPct) {
			tag = "  REGRESSED"
			if allow[d.Name] {
				tag = "  regressed (allowed)"
			}
		}
		pct := fmt.Sprintf("%+8.1f%%", d.Pct)
		if math.IsInf(d.Pct, 1) {
			pct = "     +inf"
		}
		fmt.Fprintf(&b, "%-44s %-10s %14.1f %14.1f %s%s\n", d.Name, d.Metric, d.Old, d.New, pct, tag)
	}
	return b.String()
}

// loadDoc reads one BENCH_<n>.json report.
func loadDoc(path string) (*benchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: not a benchmark report: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &doc, nil
}

// cmdDiff compares two reports and, with -gate, fails on regressions.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 50, "regression threshold in percent (higher is worse for every gated metric)")
	allowPath := fs.String("allow", "", "file naming benchmarks whose regressions are intentional, one per line")
	gateIt := fs.Bool("gate", false, "exit 1 when any unallowed benchmark regressed past the threshold")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchreport diff [-threshold pct] [-allow file] [-gate] old.json new.json")
	}
	oldDoc, err := loadDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	newDoc, err := loadDoc(fs.Arg(1))
	if err != nil {
		return err
	}
	allow, err := loadAllow(*allowPath)
	if err != nil {
		return err
	}
	rows, matched := compare(oldDoc, newDoc)
	if matched == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", fs.Arg(0), fs.Arg(1))
	}
	fmt.Printf("benchreport diff: %s -> %s (%d benchmarks compared, threshold %.0f%%)\n\n",
		fs.Arg(0), fs.Arg(1), matched, *threshold)
	fmt.Print(formatDeltas(rows, *threshold, allow))
	failing := gate(rows, *threshold, allow)
	if len(failing) == 0 {
		fmt.Printf("\nno regressions past %.0f%%\n", *threshold)
		return nil
	}
	fmt.Printf("\n%d regression(s) past %.0f%%:\n", len(failing), *threshold)
	for _, d := range failing {
		fmt.Printf("  %s %s: %.1f -> %.1f (%+.1f%%)\n", d.Name, d.Metric, d.Old, d.New, d.Pct)
	}
	if *gateIt {
		return fmt.Errorf("benchmark regression gate failed (add the benchmark to the allow file if intentional)")
	}
	return nil
}
