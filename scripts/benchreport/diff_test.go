package main

import (
	"math"
	"testing"
)

func doc(lines ...benchLine) *benchDoc {
	return &benchDoc{GoVersion: "gotest", Benchmarks: lines}
}

func line(name string, nsop, bop, allocs float64) benchLine {
	return benchLine{Name: name, Iters: 1, Metrics: map[string]float64{
		"ns/op": nsop, "B/op": bop, "allocs/op": allocs,
	}}
}

// A regression past the threshold fails the gate; one under it does not.
func TestGateThreshold(t *testing.T) {
	oldDoc := doc(line("BenchmarkA", 100, 10, 1), line("BenchmarkB", 100, 10, 1))
	newDoc := doc(line("BenchmarkA", 200, 10, 1), line("BenchmarkB", 120, 10, 1))
	rows, matched := compare(oldDoc, newDoc)
	if matched != 2 {
		t.Fatalf("matched = %d, want 2", matched)
	}
	failing := gate(rows, 50, nil)
	if len(failing) != 1 || failing[0].Name != "BenchmarkA" || failing[0].Metric != "ns/op" {
		t.Fatalf("gate(50%%) = %+v, want only BenchmarkA ns/op", failing)
	}
	if failing[0].Pct != 100 {
		t.Fatalf("BenchmarkA delta = %v%%, want 100%%", failing[0].Pct)
	}
}

// An allow-file entry suppresses the gate failure for that benchmark only.
func TestGateAllowFile(t *testing.T) {
	oldDoc := doc(line("BenchmarkA", 100, 10, 1), line("BenchmarkB", 100, 10, 1))
	newDoc := doc(line("BenchmarkA", 300, 10, 1), line("BenchmarkB", 300, 10, 1))
	failing := gate(mustRows(t, oldDoc, newDoc), 50, map[string]bool{"BenchmarkA": true})
	if len(failing) != 1 || failing[0].Name != "BenchmarkB" {
		t.Fatalf("gate with allow = %+v, want only BenchmarkB", failing)
	}
}

// Improvements never fail the gate, however large.
func TestGateIgnoresImprovements(t *testing.T) {
	oldDoc := doc(line("BenchmarkA", 1000, 800, 20))
	newDoc := doc(line("BenchmarkA", 10, 8, 0))
	if failing := gate(mustRows(t, oldDoc, newDoc), 50, nil); len(failing) != 0 {
		t.Fatalf("improvement failed the gate: %+v", failing)
	}
}

// Benchmarks present in only one report are skipped, not failed — the CI
// gate runs a quick subset against the full committed snapshot.
func TestCompareIntersectionOnly(t *testing.T) {
	oldDoc := doc(line("BenchmarkA", 100, 10, 1), line("BenchmarkOldOnly", 1, 1, 1))
	newDoc := doc(line("BenchmarkA", 100, 10, 1), line("BenchmarkNewOnly", 9999, 1, 1))
	rows, matched := compare(oldDoc, newDoc)
	if matched != 1 {
		t.Fatalf("matched = %d, want 1", matched)
	}
	for _, d := range rows {
		if d.Name != "BenchmarkA" {
			t.Fatalf("unexpected comparison row %+v", d)
		}
	}
}

// A zero baseline growing has no percentage to scale by; it must still
// register as a regression rather than slipping through as 0%.
func TestZeroBaseline(t *testing.T) {
	oldDoc := doc(line("BenchmarkA", 100, 0, 0))
	newDoc := doc(line("BenchmarkA", 100, 64, 2))
	failing := gate(mustRows(t, oldDoc, newDoc), 50, nil)
	if len(failing) != 2 {
		t.Fatalf("gate = %+v, want B/op and allocs/op regressions", failing)
	}
	for _, d := range failing {
		if !math.IsInf(d.Pct, 1) {
			t.Fatalf("%s delta = %v, want +Inf", d.Metric, d.Pct)
		}
	}
	if pctChange(0, 0) != 0 {
		t.Fatalf("pctChange(0,0) = %v, want 0", pctChange(0, 0))
	}
}

// The -GOMAXPROCS suffix must not prevent alignment across machines.
func TestNormName(t *testing.T) {
	oldDoc := doc(line("BenchmarkA", 100, 10, 1))
	newDoc := doc(line("BenchmarkA-8", 100, 10, 1))
	newDoc.GoMaxProcs = 8
	_, matched := compare(oldDoc, newDoc)
	if matched != 1 {
		t.Fatalf("suffixed name did not align: matched = %d, want 1", matched)
	}
	if got := normName("BenchmarkA", 8); got != "BenchmarkA" {
		t.Fatalf("normName mangled an unsuffixed name: %q", got)
	}
}

// A sub-benchmark whose own name ends in a dashed number must survive
// normalization when the report recorded its GOMAXPROCS: only the exact
// "-<procs>" suffix is machine noise. Reports without the provenance field
// keep the legacy any-trailing-integer strip.
func TestNormNameDashedSubBenchmarks(t *testing.T) {
	cases := []struct {
		name  string
		procs int
		want  string
	}{
		{"BenchmarkScale/cpus-32", 8, "BenchmarkScale/cpus-32"},
		{"BenchmarkScale/cpus-32-8", 8, "BenchmarkScale/cpus-32"},
		{"BenchmarkScale/cpus-8", 8, "BenchmarkScale/cpus"},  // ambiguous: exact -procs match strips
		{"BenchmarkA-16", 8, "BenchmarkA-16"},                // different machine's suffix is NOT ours to strip
		{"BenchmarkScale/cpus-32", 0, "BenchmarkScale/cpus"}, // legacy fallback, over-eager by design
		{"BenchmarkA-notanum", 0, "BenchmarkA-notanum"},
		{"BenchmarkA", 0, "BenchmarkA"},
	}
	for _, c := range cases {
		if got := normName(c.name, c.procs); got != c.want {
			t.Errorf("normName(%q, %d) = %q, want %q", c.name, c.procs, got, c.want)
		}
	}
}

// Two dash-suffixed reports from machines with different GOMAXPROCS must
// still align on the same logical benchmark.
func TestCompareAcrossGoMaxProcs(t *testing.T) {
	oldDoc := doc(line("BenchmarkA-8", 100, 10, 1))
	oldDoc.GoMaxProcs = 8
	newDoc := doc(line("BenchmarkA-32", 100, 10, 1))
	newDoc.GoMaxProcs = 32
	_, matched := compare(oldDoc, newDoc)
	if matched != 1 {
		t.Fatalf("cross-GOMAXPROCS reports did not align: matched = %d, want 1", matched)
	}
}

func mustRows(t *testing.T, oldDoc, newDoc *benchDoc) []delta {
	t.Helper()
	rows, matched := compare(oldDoc, newDoc)
	if matched == 0 {
		t.Fatal("no benchmarks matched")
	}
	return rows
}
