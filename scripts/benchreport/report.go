package main

// The report subcommand: parse `go test -bench` text output into the
// BENCH_<n>.json envelope.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result. Metrics holds every value-unit
// pair the line reported: ns/op, B/op, allocs/op, and the benchmarks'
// custom paper metrics (intercept_us, slope_us, ...).
type benchLine struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchDoc is the BENCH_<n>.json envelope. GoMaxProcs and Commit are
// provenance: trend tables flag environment changes between reports before
// anyone blames the code, and diff strips exactly the right -GOMAXPROCS
// suffix when aligning names. Both are omitempty so reports predating them
// still load.
type benchDoc struct {
	GoVersion  string          `json:"go_version"`
	GoMaxProcs int             `json:"gomaxprocs,omitempty"`
	Commit     string          `json:"commit,omitempty"`
	Benchmarks []benchLine     `json:"benchmarks"`
	Fig2       json.RawMessage `json:"fig2,omitempty"`
	// HostCost embeds the run's host-cost/v1 artifact (shootdownsim
	// -hostcost), so the trajectory carries allocation attribution
	// alongside the benchmark numbers.
	HostCost json.RawMessage `json:"host_cost,omitempty"`
}

// parseBench extracts result lines from `go test -bench` output.
func parseBench(path string) ([]benchLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []benchLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		bl := benchLine{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			bl.Metrics[fields[i+1]] = v
		}
		out = append(out, bl)
	}
	return out, sc.Err()
}

// cmdReport assembles one report from bench text output and, when given,
// the Figure 2 JSON envelope. The fig2 argument is optional so the CI
// bench gate can snapshot a quick benchmark subset without rerunning the
// paper experiments. -commit stamps the producing commit and -hostcost
// embeds a host-cost/v1 artifact into the envelope.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	commit := fs.String("commit", "", "commit hash recorded as provenance")
	hostcost := fs.String("hostcost", "", "host-cost/v1 artifact (shootdownsim -hostcost) to embed")
	fs.Parse(args)
	if fs.NArg() < 1 || fs.NArg() > 2 {
		return fmt.Errorf("usage: benchreport report [-commit hash] [-hostcost file] <bench.txt> [fig2.json]")
	}
	benches, err := parseBench(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark results in %s", fs.Arg(0))
	}
	doc := benchDoc{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Commit:     *commit,
		Benchmarks: benches,
	}
	if fs.NArg() == 2 {
		fig2, err := os.ReadFile(fs.Arg(1))
		if err != nil {
			return err
		}
		if !json.Valid(fig2) {
			return fmt.Errorf("%s is not valid JSON", fs.Arg(1))
		}
		doc.Fig2 = json.RawMessage(fig2)
	}
	if *hostcost != "" {
		hc, err := os.ReadFile(*hostcost)
		if err != nil {
			return err
		}
		if !json.Valid(hc) {
			return fmt.Errorf("%s is not valid JSON", *hostcost)
		}
		doc.HostCost = json.RawMessage(hc)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
