package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, d *benchDoc) {
	t.Helper()
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// The trend table reads reports in numeric order (BENCH_2 < BENCH_10),
// aligns dash-suffixed names, and computes the overall first→last delta.
func TestTrendTrajectory(t *testing.T) {
	dir := t.TempDir()
	d0 := doc(line("BenchmarkA", 100, 1000, 10))
	d0.GoVersion = "go1.24.0"
	d2 := doc(line("BenchmarkA-8", 150, 1000, 10))
	d2.GoVersion, d2.GoMaxProcs = "go1.24.0", 8
	d10 := doc(line("BenchmarkA-8", 200, 500, 10))
	d10.GoVersion, d10.GoMaxProcs = "go1.24.0", 8
	writeBench(t, dir, "BENCH_0.json", d0)
	writeBench(t, dir, "BENCH_2.json", d2)
	writeBench(t, dir, "BENCH_10.json", d10)
	writeBench(t, dir, "not_a_bench.json", d0) // ignored by the name filter

	reports, err := loadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("loaded %d reports, want 3", len(reports))
	}
	for i, want := range []int{0, 2, 10} {
		if reports[i].N != want {
			t.Fatalf("report %d has index %d, want %d (numeric order broken)", i, reports[i].N, want)
		}
	}
	out := formatTrend(reports)
	// One aligned row per metric, not separate rows for BenchmarkA vs
	// BenchmarkA-8.
	if n := strings.Count(out, "BenchmarkA"); n != 3 {
		t.Fatalf("want 3 BenchmarkA rows (one per metric), got %d in:\n%s", n, out)
	}
	if !strings.Contains(out, "+100.0%") {
		t.Fatalf("ns/op overall delta 100->200 (+100.0%%) missing from:\n%s", out)
	}
	if !strings.Contains(out, "-50.0%") {
		t.Fatalf("B/op overall delta 1000->500 (-50.0%%) missing from:\n%s", out)
	}
}

// Provenance changes between consecutive reports are flagged, so a step
// in the curve is not silently attributed to the code.
func TestTrendFlagsEnvironmentChanges(t *testing.T) {
	dir := t.TempDir()
	d0 := doc(line("BenchmarkA", 100, 10, 1))
	d0.GoVersion, d0.GoMaxProcs = "go1.24.0", 8
	d1 := doc(line("BenchmarkA", 100, 10, 1))
	d1.GoVersion, d1.GoMaxProcs = "go1.25.0", 8
	writeBench(t, dir, "BENCH_0.json", d0)
	writeBench(t, dir, "BENCH_1.json", d1)

	reports, err := loadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := formatTrend(reports)
	if !strings.Contains(out, "environment changed") {
		t.Fatalf("go version change not flagged in:\n%s", out)
	}

	// Same environment: no flag.
	d1.GoVersion = "go1.24.0"
	writeBench(t, dir, "BENCH_1.json", d1)
	reports, err = loadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if out := formatTrend(reports); strings.Contains(out, "environment changed") {
		t.Fatalf("spurious environment flag in:\n%s", out)
	}
}
