// Command benchreport assembles and compares the repo's machine-readable
// benchmark reports (the BENCH_<n>.json trajectory).
//
// Usage:
//
//	benchreport report <bench.txt> [fig2.json] > BENCH_n.json
//	benchreport diff [-threshold pct] [-allow file] [-gate] old.json new.json
//
// report parses `go test -bench` text output (plus, optionally,
// shootdownsim's Figure 2 JSON envelope) into one report; scripts/bench.sh
// routes both producers through it. diff compares two reports on the
// benchmarks they share, prints a per-benchmark delta table for ns/op,
// B/op, and allocs/op, and — with -gate — exits nonzero when any
// benchmark regressed past the threshold and is not listed in the allow
// file. That gate is what scripts/check.sh runs so perf regressions fail
// CI the same way a broken test does.
package main

import (
	"fmt"
	"os"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: benchreport <command> [flags] <args>

commands:
  report <bench.txt> [fig2.json]
          parse go test -bench output (and optionally a Figure 2 envelope)
          into a BENCH_<n>.json report on stdout
  diff [-threshold pct] [-allow file] [-gate] old.json new.json
          print a per-benchmark delta table for the shared benchmarks;
          with -gate, exit 1 on regressions past the threshold that are
          not named in the allow file
  trend [-dir path]
          print each benchmark's ns/op, B/op, allocs/op trajectory across
          every BENCH_<n>.json, flagging environment (go version,
          GOMAXPROCS) changes between consecutive reports
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = cmdReport(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "trend":
		err = cmdTrend(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "benchreport: unknown command %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}
