// Command benchreport assembles one machine-readable benchmark report from
// `go test -bench` text output and shootdownsim's Figure 2 JSON envelope.
// scripts/bench.sh runs both producers and routes them through here into
// the repo's BENCH_<n>.json trajectory.
//
// Usage:
//
//	benchreport <bench.txt> <fig2.json> > BENCH_n.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result. Metrics holds every value-unit
// pair the line reported: ns/op, B/op, allocs/op, and the benchmarks'
// custom paper metrics (intercept_us, slope_us, ...).
type benchLine struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

// parseBench extracts result lines from `go test -bench` output.
func parseBench(path string) ([]benchLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []benchLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		bl := benchLine{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			bl.Metrics[fields[i+1]] = v
		}
		out = append(out, bl)
	}
	return out, sc.Err()
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchreport <bench.txt> <fig2.json>\n")
		os.Exit(2)
	}
	benches, err := parseBench(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no benchmark results in %s\n", os.Args[1])
		os.Exit(1)
	}
	fig2, err := os.ReadFile(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	if !json.Valid(fig2) {
		fmt.Fprintf(os.Stderr, "benchreport: %s is not valid JSON\n", os.Args[2])
		os.Exit(1)
	}
	doc := struct {
		GoVersion  string          `json:"go_version"`
		Benchmarks []benchLine     `json:"benchmarks"`
		Fig2       json.RawMessage `json:"fig2"`
	}{runtime.Version(), benches, json.RawMessage(fig2)}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}
