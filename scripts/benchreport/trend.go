package main

// The trend subcommand: read every BENCH_<n>.json in a directory and print
// each benchmark's ns/op, B/op, and allocs/op trajectory across reports —
// the long view the 10× speed overhaul steers by. Provenance changes (go
// version, GOMAXPROCS, commit) between consecutive reports are flagged, so
// a step in the curve can be told apart from a toolchain or machine change.

import (
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchFileRE matches the trajectory files; the captured group orders them.
var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// trendReport is one loaded trajectory point.
type trendReport struct {
	Name string // file name, "BENCH_3.json"
	N    int    // trajectory index
	Doc  *benchDoc
}

// loadTrend reads every BENCH_<n>.json in dir, in numeric order.
func loadTrend(dir string) ([]trendReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []trendReport
	for _, e := range entries {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		doc, err := loadDoc(dir + "/" + e.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, trendReport{Name: e.Name(), N: n, Doc: doc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].N < out[j].N })
	return out, nil
}

// provenanceLine summarizes one report's environment for the header.
func provenanceLine(d *benchDoc) string {
	parts := []string{d.GoVersion}
	if d.GoVersion == "" {
		parts = []string{"go?"}
	}
	if d.GoMaxProcs > 0 {
		parts = append(parts, fmt.Sprintf("GOMAXPROCS=%d", d.GoMaxProcs))
	}
	if d.Commit != "" {
		parts = append(parts, d.Commit)
	}
	return strings.Join(parts, " · ")
}

// envChanged reports whether two consecutive reports ran in different
// environments — the "before you blame the code" flag.
func envChanged(a, b *benchDoc) bool {
	return a.GoVersion != b.GoVersion ||
		(a.GoMaxProcs != 0 && b.GoMaxProcs != 0 && a.GoMaxProcs != b.GoMaxProcs)
}

// trendValue formats one metric cell compactly (benchmark values span
// nanoseconds to gigabytes).
func trendValue(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// formatTrend renders the trajectory table: one row per (benchmark,
// metric), one column per report, and the overall first→last delta.
func formatTrend(reports []trendReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark trajectory (%d reports)\n\n", len(reports))
	for i, r := range reports {
		flag := ""
		if i > 0 && envChanged(reports[i-1].Doc, r.Doc) {
			flag = "  « environment changed"
		}
		fmt.Fprintf(&b, "  %-14s %s%s\n", r.Name, provenanceLine(r.Doc), flag)
	}
	b.WriteString("\n")

	// Benchmarks in first-appearance order; names normalized per report.
	var names []string
	seen := map[string]bool{}
	byReport := make([]map[string]benchLine, len(reports))
	for i, r := range reports {
		byReport[i] = map[string]benchLine{}
		for _, bl := range r.Doc.Benchmarks {
			name := normName(bl.Name, r.Doc.GoMaxProcs)
			byReport[i][name] = bl
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}

	fmt.Fprintf(&b, "%-44s %-10s", "benchmark", "metric")
	for _, r := range reports {
		fmt.Fprintf(&b, " %10s", strings.TrimSuffix(r.Name, ".json"))
	}
	fmt.Fprintf(&b, " %9s\n", "overall")
	for _, name := range names {
		for _, m := range gatedMetrics {
			fmt.Fprintf(&b, "%-44s %-10s", name, m)
			var first, last float64
			haveFirst, haveLast := false, false
			for i := range reports {
				bl, okB := byReport[i][name]
				v, ok := 0.0, false
				if okB {
					v, ok = bl.Metrics[m]
				}
				fmt.Fprintf(&b, " %10s", trendValue(v, ok))
				if ok {
					if !haveFirst {
						first, haveFirst = v, true
					}
					last, haveLast = v, true
				}
			}
			overall := "-"
			if haveFirst && haveLast && first != last {
				pct := pctChange(first, last)
				if math.IsInf(pct, 1) {
					overall = "+inf"
				} else {
					overall = fmt.Sprintf("%+.1f%%", pct)
				}
			} else if haveFirst {
				overall = "±0.0%"
			}
			fmt.Fprintf(&b, " %9s\n", overall)
		}
	}
	return b.String()
}

// cmdTrend prints the BENCH_<n>.json trajectory table.
func cmdTrend(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: benchreport trend [-dir path]")
	}
	reports, err := loadTrend(*dir)
	if err != nil {
		return err
	}
	if len(reports) == 0 {
		return fmt.Errorf("no BENCH_<n>.json reports in %s", *dir)
	}
	fmt.Print(formatTrend(reports))
	return nil
}
