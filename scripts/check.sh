#!/bin/sh
# Full local CI. Tier 1 (build + test + lint) is the hard floor — lint is
# go vet plus the shootdownlint analyzer suite (DESIGN.md §10), which
# machine-checks the simulator's determinism, IPL, and lock-ordering
# invariants. Tier 2 runs the race detector over internal/sim and
# internal/trace, the only packages allowed real concurrency (the
# simconcurrency analyzer enforces that everything else stays in virtual
# time), plus the chaos-campaign survival tests and a replay of every
# committed fault-schedule reproducer. The smoke stage exercises the
# observability layer end to end and checks that the virtual-time profiler
# and the fault-injection and chaos campaigns are deterministic (same seed,
# byte-identical output).
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: go build ./..."
go build ./...

echo "== tier 1: go test ./..."
go test ./...

echo "== tier 1: go vet ./..."
go vet ./...

echo "== tier 1: shootdownlint ./..."
go run ./cmd/shootdownlint ./...

echo "== tier 1: shootdownlint ./internal/profile (profiler stays deterministic)"
go run ./cmd/shootdownlint ./internal/profile

echo "== tier 2: go test -race ./internal/sim/... ./internal/trace/..."
go test -race ./internal/sim/... ./internal/trace/...

echo "== tier 2: chaos campaign survival + reproducer corpus replay"
go test ./internal/experiments -run 'ChaosCampaignSurvivesWithoutBug|StaleReviveBugShrinks|CorpusReplay'

echo "== smoke: shootdownsim trace/metrics/json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/shootdownsim -runs 1 -trace "$tmp/t.json" -metrics "$tmp/m.txt" fig2 >"$tmp/fig2.txt"
go run ./cmd/shootdownsim -runs 1 -format json fig2 >"$tmp/fig2.json"
go run ./scripts/validatetrace -results "$tmp/fig2.json" "$tmp/t.json"
grep -q '^shootdown_syncs_total' "$tmp/m.txt"
grep -q '^# TYPE shootdown_initiator_microseconds histogram' "$tmp/m.txt"

echo "== smoke: tlbtest trace/json"
go run ./cmd/tlbtest -children 4 -trace "$tmp/tt.json" -format json >"$tmp/tt-result.json"
go run ./scripts/validatetrace "$tmp/tt.json"

echo "== smoke: profiles are deterministic (same seed, byte-identical folded stacks)"
go run ./cmd/shootdownsim -seed 7 -runs 1 -format json -profile "$tmp/p1" profile >"$tmp/profile1.json"
go run ./cmd/shootdownsim -seed 7 -runs 1 -format json -profile "$tmp/p2" profile >"$tmp/profile2.json"
cmp "$tmp/profile1.json" "$tmp/profile2.json"
cmp "$tmp/p1/folded.txt" "$tmp/p2/folded.txt"
cmp "$tmp/p1/critical.txt" "$tmp/p2/critical.txt"
cmp "$tmp/p1/timeline.csv" "$tmp/p2/timeline.csv"
cmp "$tmp/p1/locks.txt" "$tmp/p2/locks.txt"
grep -q 'ipl-masked' "$tmp/p1/folded.txt"
grep -q 'critical-path report' "$tmp/p1/critical.txt"

echo "== smoke: fault campaign is deterministic (same seed, identical bytes)"
go run ./cmd/shootdownsim -seed 7 -format json faults >"$tmp/faults1.json"
go run ./cmd/shootdownsim -seed 7 -format json faults >"$tmp/faults2.json"
cmp "$tmp/faults1.json" "$tmp/faults2.json"

echo "== smoke: chaos campaign is deterministic and corpus repros replay"
go run ./cmd/shootdownsim -seed 7 -format json chaos >"$tmp/chaos1.json"
go run ./cmd/shootdownsim -seed 7 -format json chaos >"$tmp/chaos2.json"
cmp "$tmp/chaos1.json" "$tmp/chaos2.json"
for repro in internal/experiments/testdata/corpus/*.json; do
	go run ./cmd/shootdownsim -repro "$repro"
done

echo "check: all green"
