#!/bin/sh
# Full local CI. Tier 1 (build + test + lint) is the hard floor — lint is
# go vet plus the shootdownlint analyzer suite (DESIGN.md §10), which
# machine-checks the simulator's determinism, IPL, and lock-ordering
# invariants. Tier 2 runs the race detector over internal/sim and
# internal/trace, the only packages allowed real concurrency (the
# simconcurrency analyzer enforces that everything else stays in virtual
# time), plus the chaos-campaign survival tests and a replay of every
# committed fault-schedule reproducer. The smoke stage exercises the
# observability layer end to end: traces and results round-trip through
# `tlbtrace validate`, the profiler and the fault/chaos campaigns are
# deterministic (same seed, byte-identical output), the schedule explorer
# explores a byte-identical set on a repeated run, time travel restores a
# mid-run snapshot byte for byte, a seeded chaos failure auto-writes a
# flight-recorder black box (whose embedded restore point round-trips
# through validate), the device-chaos campaign is deterministic and a
# forced device quarantine dumps a black box whose devices section
# validates, the host-cost attribution artifact validates and its exact
# counters explain at least 80% of the Fig2 benchmark's measured B/op,
# and the benchmark gate compares a quick subset
# against the last committed BENCH_<n>.json snapshot (threshold
# BENCH_GATE_THRESHOLD percent, default 50; intentional regressions go in
# scripts/bench-allow.txt).
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: go build ./..."
go build ./...

echo "== tier 1: go test ./..."
go test ./...

echo "== tier 1: go vet ./..."
go vet ./...

echo "== tier 1: shootdownlint ./... (full analyzer suite, one invocation)"
go run ./cmd/shootdownlint ./...

echo "== tier 2: go test -race ./internal/sim/... ./internal/trace/..."
go test -race ./internal/sim/... ./internal/trace/...

echo "== tier 2: chaos campaign survival + reproducer corpus replay"
go test ./internal/experiments -run 'ChaosCampaignSurvivesWithoutBug|StaleReviveBugShrinks|CorpusReplay|DeviceBugShrinks|DeviceQuarantineBlackBox'

echo "== smoke: shootdownsim trace/metrics/json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/shootdownsim -runs 1 -trace "$tmp/t.json" -metrics "$tmp/m.txt" fig2 >"$tmp/fig2.txt"
go run ./cmd/shootdownsim -runs 1 -format json fig2 >"$tmp/fig2.json"
go run ./cmd/tlbtrace validate -results "$tmp/fig2.json" "$tmp/t.json"
grep -q '^shootdown_syncs_total' "$tmp/m.txt"
grep -q '^# TYPE shootdown_initiator_microseconds histogram' "$tmp/m.txt"

echo "== smoke: tlbtest trace/json"
go run ./cmd/tlbtest -children 4 -trace "$tmp/tt.json" -format json >"$tmp/tt-result.json"
go run ./cmd/tlbtrace validate "$tmp/tt.json"

echo "== smoke: profiles are deterministic (same seed, byte-identical folded stacks)"
go run ./cmd/shootdownsim -seed 7 -runs 1 -format json -profile "$tmp/p1" profile >"$tmp/profile1.json"
go run ./cmd/shootdownsim -seed 7 -runs 1 -format json -profile "$tmp/p2" profile >"$tmp/profile2.json"
cmp "$tmp/profile1.json" "$tmp/profile2.json"
cmp "$tmp/p1/folded.txt" "$tmp/p2/folded.txt"
cmp "$tmp/p1/critical.txt" "$tmp/p2/critical.txt"
cmp "$tmp/p1/timeline.csv" "$tmp/p2/timeline.csv"
cmp "$tmp/p1/locks.txt" "$tmp/p2/locks.txt"
cmp "$tmp/p1/shootdowns.json" "$tmp/p2/shootdowns.json"
grep -q 'ipl-masked' "$tmp/p1/folded.txt"
grep -q 'critical-path report' "$tmp/p1/critical.txt"
go run ./cmd/tlbtrace dag "$tmp/p1" >/dev/null

echo "== smoke: fault campaign is deterministic (same seed, identical bytes)"
go run ./cmd/shootdownsim -seed 7 -format json faults >"$tmp/faults1.json"
go run ./cmd/shootdownsim -seed 7 -format json faults >"$tmp/faults2.json"
cmp "$tmp/faults1.json" "$tmp/faults2.json"

echo "== smoke: chaos campaign is deterministic and corpus repros replay"
go run ./cmd/shootdownsim -seed 7 -format json chaos >"$tmp/chaos1.json"
go run ./cmd/shootdownsim -seed 7 -format json chaos >"$tmp/chaos2.json"
cmp "$tmp/chaos1.json" "$tmp/chaos2.json"
for repro in internal/experiments/testdata/corpus/*.json; do
	go run ./cmd/shootdownsim -repro "$repro"
done

echo "== device-chaos: campaign is deterministic (same seed, identical bytes)"
go run ./cmd/shootdownsim -seed 7 -format json devices >"$tmp/devices1.json"
go run ./cmd/shootdownsim -seed 7 -format json devices >"$tmp/devices2.json"
cmp "$tmp/devices1.json" "$tmp/devices2.json"

echo "== device-chaos: a forced device quarantine dumps a black box whose devices section round-trips"
# The wedge scenario drives the watchdog ladder all the way down: the
# quarantine trips the recorder even though the campaign survives.
go run ./cmd/shootdownsim -seed 7 -format json -flight "$tmp/devflight" devices >/dev/null 2>"$tmp/devflight.log"
go run ./cmd/tlbtrace validate -blackbox "$tmp/devflight"/blackbox-0-watchdog.json | grep -q 'devices: .* quarantined'
go run ./cmd/tlbtrace query -events -cat device "$tmp/devflight"/blackbox-0-watchdog.json | grep -q 'dev-quarantine'

echo "== smoke: schedule explorer is deterministic (same budget+seed, byte-identical explored set)"
# wall_ms is shrink-campaign wall-clock accounting, the one legitimately
# nondeterministic field in the reproducer metadata; strip it before cmp.
go run ./cmd/shootdownsim -seed 7 -chaosbug -explorebudget 8 -format json explore | sed '/wall_ms/d' >"$tmp/explore1.json"
go run ./cmd/shootdownsim -seed 7 -chaosbug -explorebudget 8 -format json explore | sed '/wall_ms/d' >"$tmp/explore2.json"
cmp "$tmp/explore1.json" "$tmp/explore2.json"

echo "== smoke: time travel — snapshot mid-run, restore by replay, verify byte identity"
go run ./cmd/shootdownsim -seed 7 timetravel >"$tmp/timetravel.txt"
grep -q 'restore verified' "$tmp/timetravel.txt"

echo "== smoke: a seeded chaos failure auto-writes a flight-recorder black box"
go run ./cmd/shootdownsim -seed 7 -format json -chaosbug -flight "$tmp/flight" chaos >"$tmp/chaosbug.json" 2>"$tmp/chaosbug.log"
ls "$tmp/flight"/blackbox-*.json >/dev/null
for box in "$tmp/flight"/blackbox-*.json; do
	go run ./cmd/tlbtrace validate -blackbox "$box"
done
go run ./cmd/tlbtrace query -cat shootdown "$tmp/flight"/blackbox-0-*.json >/dev/null

echo "== hostcost: attribution artifact validates and covers the Fig2 benchmark's B/op"
# The hostcost experiment's fig2 phase is byte-for-byte the body of
# BenchmarkFig2BasicCost, so the exact-site bytes the counters attribute
# must explain at least 80% of what the benchmark actually allocates. A
# drop below the floor means a new hot allocation site went unattributed.
go run ./cmd/shootdownsim -seed 7 -hostcost "$tmp/hostcost.json" hostcost >/dev/null
go test -bench 'Fig2BasicCost' -benchmem -benchtime 1x -run '^$' . >"$tmp/hostbench.txt"
go run ./cmd/tlbtrace hostcost -validate -mincoverage 80 -bench "$tmp/hostbench.txt" "$tmp/hostcost.json"

echo "== gate: quick benchmark subset vs last committed BENCH_<n>.json"
n=0
while [ -e "BENCH_$((n + 1)).json" ]; do n=$((n + 1)); done
go test -bench 'SingleShootdown|SimEngineSwitch|TLBProbe|SnapshotCapture|SnapshotRestore' -benchmem -benchtime 0.3s -run '^$' . >"$tmp/bench.txt"
go run ./scripts/benchreport report "$tmp/bench.txt" >"$tmp/bench.json"
go run ./scripts/benchreport diff -gate -threshold "${BENCH_GATE_THRESHOLD:-50}" \
	-allow scripts/bench-allow.txt "BENCH_${n}.json" "$tmp/bench.json"

echo "check: all green"
