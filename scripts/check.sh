#!/bin/sh
# Full local CI: build, vet, race-test, then smoke-test the observability
# layer end to end (Chrome trace + metrics + JSON results from a real run).
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== smoke: shootdownsim trace/metrics/json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/shootdownsim -runs 1 -trace "$tmp/t.json" -metrics "$tmp/m.txt" fig2 >"$tmp/fig2.txt"
go run ./cmd/shootdownsim -runs 1 -format json fig2 >"$tmp/fig2.json"
go run ./scripts/validatetrace -results "$tmp/fig2.json" "$tmp/t.json"
grep -q '^shootdown_syncs_total' "$tmp/m.txt"
grep -q '^# TYPE shootdown_initiator_microseconds histogram' "$tmp/m.txt"

echo "== smoke: tlbtest trace/json"
go run ./cmd/tlbtest -children 4 -trace "$tmp/tt.json" -format json >"$tmp/tt-result.json"
go run ./scripts/validatetrace "$tmp/tt.json"

echo "check: all green"
