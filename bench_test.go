// Benchmarks that regenerate every table and figure of the paper's
// evaluation, one benchmark per artifact, reporting the headline numbers
// as custom metrics (µs, events, ratios). Absolute values come from the
// Multimax-calibrated cost model; the shapes are the reproduction target.
//
//	go test -bench=. -benchmem
package shootdown_test

import (
	"fmt"
	"sync"
	"testing"

	"shootdown/internal/experiments"
	"shootdown/internal/kernel"
	"shootdown/internal/machine"
	"shootdown/internal/mem"
	"shootdown/internal/ptable"
	"shootdown/internal/sim"
	"shootdown/internal/stats"
	"shootdown/internal/tlb"
	"shootdown/internal/workload"
)

const benchSeed = 42

// BenchmarkFig2BasicCost regenerates Figure 2: the basic cost of TLB
// shootdown versus processors involved, with the 1..12 trend-line fit and
// the paper's 100-processor extrapolation.
func BenchmarkFig2BasicCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(benchSeed, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Fit.Intercept, "fit-intercept-µs")
		b.ReportMetric(r.Fit.Slope, "fit-slope-µs/cpu")
		b.ReportMetric(r.At100US/1000, "at-100cpus-ms")
		b.ReportMetric(r.Points[14].MeanUS-r.Fit.At(15), "congestion-excess-k15-µs")
	}
}

// BenchmarkTable1LazyEvaluation regenerates Table 1: the effect of lazy
// evaluation on shootdown counts for the Mach build and Parthenon.
func BenchmarkTable1LazyEvaluation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Mach[0].KernelEvents()), "mach-kernel-events-lazy")
		b.ReportMetric(float64(r.Mach[1].KernelEvents()), "mach-kernel-events-nolazy")
		b.ReportMetric(float64(r.Parthenon[0].UserEvents()), "parthenon-user-events-lazy")
		b.ReportMetric(float64(r.Parthenon[1].UserEvents()), "parthenon-user-events-nolazy")
	}
}

// tablesOnce caches the shared four-application run that Tables 2-4 and
// the overhead analysis are different views of.
var (
	tablesOnce sync.Once
	tablesRes  experiments.TablesResult
	tablesErr  error
)

func tables(b *testing.B) experiments.TablesResult {
	b.Helper()
	tablesOnce.Do(func() {
		tablesRes, tablesErr = experiments.Tables234(benchSeed)
	})
	if tablesErr != nil {
		b.Fatal(tablesErr)
	}
	return tablesRes
}

// BenchmarkTable2KernelShootdowns regenerates Table 2 (kernel-pmap
// initiator results for the four applications).
func BenchmarkTable2KernelShootdowns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := tables(b)
		for _, a := range r.Apps {
			b.ReportMetric(float64(a.KernelEvents()), a.Name+"-events")
			b.ReportMetric(a.KernelSummary().Mean, a.Name+"-mean-µs")
		}
	}
}

// BenchmarkTable3UserShootdowns regenerates Table 3 (user-pmap initiator
// results; only Camelot has any).
func BenchmarkTable3UserShootdowns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := tables(b)
		for _, a := range r.Apps {
			b.ReportMetric(float64(a.UserEvents()), a.Name+"-events")
		}
		cam := r.Apps[3]
		b.ReportMetric(cam.UserSummary().Mean, "camelot-mean-µs")
		b.ReportMetric(stats.Percentile(cam.UserPages, 100), "camelot-max-pages")
	}
}

// BenchmarkTable4Responders regenerates Table 4 (responder service times,
// sampled on 5 of 16 processors).
func BenchmarkTable4Responders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := tables(b)
		for _, a := range r.Apps {
			b.ReportMetric(a.ResponderSummary().Mean, a.Name+"-resp-mean-µs")
		}
	}
}

// BenchmarkOverhead regenerates the §8 overhead analysis.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := tables(b)
		b.ReportMetric(r.Apps[0].OverheadPct(16, true), "mach-kernel-overhead-%")
		b.ReportMetric(r.Apps[3].OverheadPct(16, false), "camelot-user-overhead-%")
	}
}

// BenchmarkPerturbation regenerates the §6.1 instrumentation check.
func BenchmarkPerturbation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Perturbation(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PerturbationPct, "perturbation-%")
		b.ReportMetric(r.SeedSpreadPct, "seed-spread-%")
	}
}

// BenchmarkScaling regenerates the §8/§11 scaling analysis, measuring
// machines up to 64 processors against the linear extrapolation.
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Scale(benchSeed, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.At100MS, "extrapolated-100cpu-ms")
		last := r.Measured[len(r.Measured)-1]
		b.ReportMetric(last.MeasuredUS, "measured-63shot-µs")
		b.ReportMetric(last.MeasuredUS/last.TrendUS, "measured/trend-63shot")
	}
}

// BenchmarkAblationStrategies compares the consistency mechanisms (§3, §9).
func BenchmarkAblationStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.StrategyCompare(benchSeed, []int{6})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.ProtectUS, row.Strategy+"-µs")
		}
	}
}

// BenchmarkAblationIPIModes compares unicast/multicast/broadcast IPIs (§9).
func BenchmarkAblationIPIModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.IPIModes(benchSeed, []int{15})
		if err != nil {
			b.Fatal(err)
		}
		for mode, vals := range r.Rows {
			b.ReportMetric(vals[0], mode+"-k15-µs")
		}
	}
}

// BenchmarkAblationHighPriorityIPI measures §9's high-priority software
// interrupt against stock interrupt masking.
func BenchmarkAblationHighPriorityIPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.HighPriorityIPI(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Stock.P90, "stock-p90-µs")
		b.ReportMetric(r.HighPrio.P90, "highprio-p90-µs")
	}
}

// BenchmarkAblationIdleOpt measures the idle-processor optimization (§4).
func BenchmarkAblationIdleOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.IdleOpt(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WithOptUS, "with-opt-µs")
		b.ReportMetric(r.WithoutOptUS, "without-opt-µs")
	}
}

// BenchmarkAblationFlushThreshold sweeps the invalidate-vs-flush point (§4).
func BenchmarkAblationFlushThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FlushThreshold(benchSeed, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].ProtectUS, "threshold1-µs")
		b.ReportMetric(r.Rows[len(r.Rows)-1].ProtectUS, "threshold64-µs")
	}
}

// BenchmarkAblationQueueSize sweeps the action-queue size (§4).
func BenchmarkAblationQueueSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.QueueSize(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].Overflows), "q1-overflows")
		b.ReportMetric(float64(r.Rows[len(r.Rows)-1].Overflows), "q32-overflows")
	}
}

// BenchmarkExtensionTaggedTLB measures the §10 ASID-tagged TLB extension
// against the stock flush-on-switch design.
func BenchmarkExtensionTaggedTLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TaggedTLB(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Untagged.RuntimeMS, "untagged-ms")
		b.ReportMetric(r.Tagged.RuntimeMS, "tagged-ms")
	}
}

// BenchmarkExtensionPools measures the §8 processor-pool restructuring on
// machines up to 64 CPUs.
func BenchmarkExtensionPools(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Pools(benchSeed, 8)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.GlobalUS, "64cpu-global-µs")
		b.ReportMetric(last.PooledUS, "64cpu-pooled-µs")
	}
}

// BenchmarkExtensionPageout measures the pageout scenario and the
// shootdown's share of it (§5).
func BenchmarkExtensionPageout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Pageout(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TotalPageoutMS, "pageout-ms")
		b.ReportMetric(100*r.ShootdownShare, "shootdown-share-%")
	}
}

// BenchmarkDeviceSweep sweeps the device-TLB count of the DMA-streaming
// workload: the marginal cost of heterogeneous barrier members that ack by
// completion message instead of IPI. Reports per-count device
// invalidations posted and virtual runtime, so a device-path regression (a
// slower completion queue, a busier watchdog ladder) moves a tracked
// headline number.
func BenchmarkDeviceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, nd := range []int{1, 2, 4} {
			r, err := workload.RunDMA(workload.AppConfig{
				NCPUs: 4, Seed: benchSeed, Scale: 0.5, NumDevices: nd,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(r.Shootdown.DevInvalsPosted), fmt.Sprintf("devinvals-%ddev", nd))
			b.ReportMetric(float64(r.Runtime)/1e6, fmt.Sprintf("runtime-ms-%ddev", nd))
		}
	}
}

// BenchmarkSingleShootdown measures one 4-processor shootdown end to end
// (the finest-grained repeatable unit).
func BenchmarkSingleShootdown(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		r, err := workload.RunTester(workload.TesterConfig{
			NCPUs: 8, Children: 4, Seed: benchSeed + int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		total += r.ShootUS
	}
	b.ReportMetric(total/float64(b.N), "virtual-µs/shootdown")
}

// --- microbenchmarks of the substrate itself (wall-clock performance) ---

// BenchmarkSimEngineSwitch measures the discrete-event engine's context
// handoff rate, which bounds overall simulation speed.
func BenchmarkSimEngineSwitch(b *testing.B) {
	eng := sim.New()
	eng.Spawn("ticker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTLBProbe measures the TLB model's lookup path.
func BenchmarkTLBProbe(b *testing.B) {
	t := tlb.New(tlb.Config{Size: 64})
	for i := 0; i < 64; i++ {
		t.Insert(ptable.VAddr(i)<<mem.PageShift, tlb.ASIDNone, ptable.Make(mem.Frame(i), true))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Probe(ptable.VAddr(i%64)<<mem.PageShift, tlb.ASIDNone)
	}
}

// BenchmarkPageTableWalk measures the two-level walk in simulated memory.
func BenchmarkPageTableWalk(b *testing.B) {
	m := mem.New(64)
	tab, err := ptable.New(m)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := tab.Enter(ptable.VAddr(i)<<mem.PageShift, ptable.Make(mem.Frame(i), true)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(ptable.VAddr(i%16) << mem.PageShift)
	}
}

// BenchmarkMachineMemoryAccess measures a full simulated load (TLB probe,
// protection check, data fetch) through an Exec.
func BenchmarkMachineMemoryAccess(b *testing.B) {
	eng := sim.New()
	costs := machine.DefaultCosts()
	costs.JitterPct = 0
	m := machine.New(eng, machine.Options{NumCPUs: 1, MemFrames: 64, Costs: costs})
	tab, err := ptable.New(m.Phys)
	if err != nil {
		b.Fatal(err)
	}
	m.SetKernelTable(tab)
	va := machine.KernelBase + 0x1000
	f, _ := m.Phys.AllocFrame()
	if err := tab.Enter(va, ptable.Make(f, true)); err != nil {
		b.Fatal(err)
	}
	eng.Spawn("reader", func(p *sim.Proc) {
		ex := m.Attach(p, 0)
		defer ex.Detach()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, fault := ex.Read(va); fault != nil {
				b.Errorf("fault: %v", fault)
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchSnapStep is the event boundary the snapshot benchmarks pause at.
const benchSnapStep = 1000

// pausedWorld builds a churn world and pauses it mid-run at an event
// boundary, ready to snapshot.
func pausedWorld(b *testing.B) *kernel.Kernel {
	b.Helper()
	k, err := workload.StartChurn(workload.AppConfig{
		NCPUs: 4, Seed: benchSeed, Scale: 0.5, Oracle: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := k.RunToStep(benchSnapStep); err != nil {
		b.Fatal(err)
	}
	if k.Eng.Stopped() || k.Eng.StepCount() < benchSnapStep {
		b.Fatalf("world ended before step %d", benchSnapStep)
	}
	return k
}

// BenchmarkSnapshotCapture measures one whole-simulation snapshot of a
// paused mid-run world: every layer serialized and the digest computed.
func BenchmarkSnapshotCapture(b *testing.B) {
	k := pausedWorld(b)
	b.ResetTimer()
	var layers int
	for i := 0; i < b.N; i++ {
		s, err := k.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		layers = len(s.Layers)
	}
	b.ReportMetric(float64(layers), "layers")
}

// BenchmarkSnapshotRestore measures replay-based restore end to end:
// rebuild a fresh world from the same configuration, replay it to the
// snapshot step, and verify the digest matches — the unit of work the
// restore-to-prefix shrinker and the explorer amortize.
func BenchmarkSnapshotRestore(b *testing.B) {
	want, err := pausedWorld(b).Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := pausedWorld(b).Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if s.Digest != want.Digest {
			b.Fatalf("restore diverged: %s vs %s", s.Digest, want.Digest)
		}
	}
}
