// Package shootdown is a from-scratch reproduction of "Translation
// Lookaside Buffer Consistency: A Software Approach" (Black, Rashid, Golub,
// Hill, Baron; ASPLOS 1989) — the Mach TLB shootdown paper — as a
// deterministic discrete-event simulation in pure Go.
//
// The repository contains the complete system the paper describes: a
// simulated shared-bus multiprocessor with per-processor TLBs, interrupt
// controllers and write-through caches (internal/machine, internal/sim),
// two-level page tables living in simulated physical memory
// (internal/ptable, internal/mem), the Mach VM system with copy-on-write
// and lazily populated pmaps (internal/vm, internal/pmap), the shootdown
// algorithm itself with all of the paper's refinements (internal/core),
// the alternative consistency mechanisms of Sections 3 and 9
// (internal/baseline), the paper's evaluation applications and the §5.1
// consistency tester (internal/workload), and generators for every table
// and figure in the evaluation (internal/experiments).
//
// Start with cmd/shootdownsim to regenerate the paper's results, or
// examples/quickstart to see the algorithm run. DESIGN.md maps the paper
// to the code; EXPERIMENTS.md records reproduced-vs-paper numbers.
package shootdown
