// Quickstart: build a simulated 4-processor machine running the Mach
// kernel, share a page between threads on different processors, reprotect
// it, and watch the shootdown algorithm keep the TLBs consistent.
package main

import (
	"fmt"
	"log"

	"shootdown/internal/kernel"
	"shootdown/internal/machine"
	"shootdown/internal/mem"
	"shootdown/internal/pmap"
)

func main() {
	// A 4-CPU machine with the default (Multimax-calibrated) cost model
	// and the Mach shootdown as the consistency strategy.
	k, err := kernel.New(kernel.Config{
		Machine: machine.Options{NumCPUs: 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	// One task, two threads: a writer that caches a writable translation
	// on its processor, and a main thread that takes the page away.
	task, err := k.NewTask("demo")
	if err != nil {
		log.Fatal(err)
	}
	task.Spawn("main", func(th *kernel.Thread) {
		page, err := th.VMAllocate(mem.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		writer := task.Spawn("writer", func(w *kernel.Thread) {
			for n := uint32(0); ; n++ {
				if err := w.Write(page, n); err != nil {
					// The write fault is the expected ending: the page
					// went read-only under us and the stale TLB entry
					// was shot down.
					fmt.Printf("[%8.3f ms] writer: write fault after %d stores — TLB entry was shot down\n",
						float64(w.Now())/1e6, n)
					return
				}
				w.Compute(10_000) // 10 µs of work per store
			}
		})

		th.Compute(2_000_000) // let the writer cache its translation
		fmt.Printf("[%8.3f ms] main: reprotecting the page read-only (this shoots down the writer's TLB entry)\n",
			float64(th.Now())/1e6)
		if err := th.VMProtect(page, page+mem.PageSize, pmap.ProtRead); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8.3f ms] main: vm_protect returned — no stale entry can be used from here on\n",
			float64(th.Now())/1e6)
		th.Join(writer)

		v, err := th.Read(page)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8.3f ms] main: final counter value %d (reads still work)\n",
			float64(th.Now())/1e6, v)
	})

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	st := k.Shoot.Stats()
	fmt.Printf("\nshootdown statistics: %d invoked, %d IPIs sent, %d responder passes, %d entries invalidated\n",
		st.Syncs, st.IPIsSent, st.Responses, st.EntriesInvalidated)
	kernelUS, userUS := k.Trace.InitiatorTimes()
	fmt.Printf("initiator events: %d kernel-pmap, %d user-pmap", len(kernelUS), len(userUS))
	if len(userUS) > 0 {
		fmt.Printf(" (last user shootdown took %.0f µs)", userUS[len(userUS)-1])
	}
	fmt.Println()
}
