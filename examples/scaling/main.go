// Scaling: reproduce Figure 2 (basic costs of TLB shootdown) with a quick
// sweep, fit the paper's trend line, and extrapolate to the 100-processor
// machines the paper's conclusion contemplates — then actually build a
// 64-processor simulated machine and measure, which the authors could not.
package main

import (
	"fmt"
	"log"
	"strings"

	"shootdown/internal/experiments"
	"shootdown/internal/workload"
)

func main() {
	fmt.Println("sweeping shootdowns of 1..15 processors (3 runs each)...")
	fig2, err := experiments.Fig2(7, 3)
	if err != nil {
		log.Fatal(err)
	}

	// A tiny ASCII rendition of Figure 2.
	maxUS := fig2.Points[len(fig2.Points)-1].MeanUS
	for _, p := range fig2.Points {
		bar := int(40 * p.MeanUS / maxUS)
		fmt.Printf("%2d processors %5.0f µs %s\n", p.Processors, p.MeanUS, strings.Repeat("#", bar))
	}
	fmt.Printf("\ntrend line (1..%d): %.0f + %.1f*n µs   (paper: 430 + 55*n)\n",
		fig2.FitMaxK, fig2.Fit.Intercept, fig2.Fit.Slope)
	fmt.Printf("extrapolated cost at 100 processors: %.1f ms   (paper's warning: ~6 ms)\n\n",
		fig2.At100US/1000)

	fmt.Println("measuring an actual 64-processor simulated machine (63 processors shot at)...")
	res, err := workload.RunTester(workload.TesterConfig{NCPUs: 64, Children: 63, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	trend := fig2.Fit.At(63)
	fmt.Printf("measured: %.0f µs; linear trend predicts %.0f µs (%.2fx — the shared bus congests,\n",
		res.ShootUS, trend, res.ShootUS/trend)
	fmt.Println("which is why §8 proposes restructuring kernels into processor pools on NUMA machines)")
}
