// Workloads: run the paper's four evaluation applications (§5.2) on the
// instrumented simulated kernel and print a Table 2/3-style summary of the
// shootdown behaviour each one provokes.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"shootdown/internal/stats"
	"shootdown/internal/workload"
)

func main() {
	apps := []struct {
		name  string
		blurb string
		run   func(workload.AppConfig) (workload.AppResult, error)
	}{
		{"Mach build", "throughput-only parallelism; kernel buffer churn", workload.RunMachBuild},
		{"Parthenon", "workpile theorem prover; lazy evaluation kills its shootdowns", workload.RunParthenon},
		{"Agora", "write-once shared memory; big shootdowns only during setup", workload.RunAgora},
		{"Camelot", "copy-on-write transactions; the only source of user shootdowns", workload.RunCamelot},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "application\truntime\tkernel shootdowns\tmean µs\tuser shootdowns\tmean µs\tresponder mean µs\n")
	for _, a := range apps {
		fmt.Printf("running %-11s (%s)...\n", a.name, a.blurb)
		res, err := a.run(workload.AppConfig{Seed: 42})
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		fmt.Fprintf(w, "%s\t%.1fs\t%d\t%.0f\t%d\t%.0f\t%.0f\n",
			a.name, res.Runtime.Duration().Seconds(),
			res.KernelEvents(), res.KernelSummary().Mean,
			res.UserEvents(), res.UserSummary().Mean,
			stats.Mean(res.ResponderUS))
	}
	fmt.Println()
	w.Flush()
	fmt.Println("\n(compare: paper's Table 2 kernel events 7494/4/88/68 over 20/20/7.5/60 minutes;")
	fmt.Println(" the simulation compresses runtimes but preserves the per-application shape)")
}
