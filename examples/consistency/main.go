// Consistency: the paper's §5.1 tester run twice — once without any
// consistency mechanism (stale TLB entries let writes through a read-only
// protection) and once with the Mach shootdown (no write completes after
// vm_protect returns). This is the simulated equivalent of running the
// paper's test program on broken and fixed kernels.
package main

import (
	"fmt"
	"log"

	"shootdown/internal/baseline"
	"shootdown/internal/core"
	"shootdown/internal/machine"
	"shootdown/internal/workload"
)

func main() {
	const children = 5

	fmt.Println("=== run 1: no consistency mechanism (the problem) ===")
	broken, err := workload.RunTester(workload.TesterConfig{
		NCPUs: 8, Children: children, Seed: 1,
		App: workload.AppConfig{
			Strategy: func(*machine.Machine) (core.Strategy, error) {
				return baseline.NewNone(), nil
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	report(broken)

	fmt.Println("\n=== run 2: Mach shootdown algorithm (the fix) ===")
	fixed, err := workload.RunTester(workload.TesterConfig{
		NCPUs: 8, Children: children, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(fixed)
	if fixed.UserEvents == 1 {
		fmt.Printf("the fix cost one shootdown: %d processors shot at, %.0f µs at the initiator\n",
			fixed.ProcsShot, fixed.ShootUS)
	}

	if !broken.Inconsistent || fixed.Inconsistent {
		log.Fatal("unexpected outcome: the demo should fail without the shootdown and pass with it")
	}
}

func report(r workload.TesterResult) {
	fmt.Printf("counters when vm_protect returned: %v\n", r.Saved)
	fmt.Printf("counters after all writers died:   %v\n", r.Final)
	if r.Inconsistent {
		fmt.Println("-> INCONSISTENT: writes kept landing on a read-only page through stale TLB entries")
	} else {
		fmt.Println("-> consistent: not a single write completed after the reprotect")
	}
}
