// Command shootdownsim regenerates the tables and figures of "Translation
// Lookaside Buffer Consistency: A Software Approach" (Black et al., ASPLOS
// 1989) on the simulated multiprocessor.
//
// Usage:
//
//	shootdownsim [flags] <experiment>...
//
// Experiments: fig2, table1, table2, table3, table4, overhead, perturb,
// scale, strategies, ipimodes, highprio, idleopt, threshold, queue, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"shootdown/internal/experiments"
)

var (
	seed = flag.Int64("seed", 42, "simulation seed (jitter, scheduling, workload randomness)")
	runs = flag.Int("runs", 10, "runs per data point for the fig2/scale sweeps")
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: shootdownsim [flags] <experiment>...

Reproduces the evaluation of the Mach TLB shootdown paper (ASPLOS 1989)
on a simulated 16-processor Encore Multimax.

experiments:
  fig2        Figure 2: basic costs of TLB shootdown (1..15 processors)
  table1      Table 1: effect of lazy evaluation (Mach build, Parthenon)
  table2      Table 2: kernel pmap shootdowns, initiator side
  table3      Table 3: user pmap shootdowns, initiator side
  table4      Table 4: responder results
  overhead    Section 8: machine-wide overhead per application
  perturb     Section 6.1: instrumentation perturbation check
  scale       Sections 8/11: scaling to larger machines (measured, not
              just extrapolated)
  strategies  Ablation: shootdown vs hardware remote-invalidate vs
              postponed-IPI vs timer-flush
  ipimodes    Ablation: unicast vs multicast vs broadcast interrupts
  highprio    Ablation: high-priority software interrupt
  idleopt     Ablation: idle-processor optimization
  threshold   Ablation: invalidate-vs-flush threshold
  queue       Ablation: consistency-action queue sizing
  taggedtlb   Extension: ASID-tagged TLBs with lazy release (§10)
  pools       Extension: processor pools for NUMA machines (§8)
  pageout     Extension: pageout under memory pressure (§5)
  all         everything above

flags:
`)
	flag.PrintDefaults()
}

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	all := want["all"]

	// Tables 2-4 and the overhead analysis share one set of application
	// runs; compute them lazily and only once.
	var tables *experiments.TablesResult
	getTables := func() (*experiments.TablesResult, error) {
		if tables != nil {
			return tables, nil
		}
		r, err := experiments.Tables234(*seed)
		if err != nil {
			return nil, err
		}
		tables = &r
		return tables, nil
	}

	type job struct {
		name string
		run  func() (string, error)
	}
	jobs := []job{
		{"fig2", func() (string, error) {
			r, err := experiments.Fig2(*seed, *runs)
			return r.Render(), err
		}},
		{"table1", func() (string, error) {
			r, err := experiments.Table1(*seed)
			return r.Render(), err
		}},
		{"table2", func() (string, error) {
			r, err := getTables()
			if err != nil {
				return "", err
			}
			return r.RenderTable2(), nil
		}},
		{"table3", func() (string, error) {
			r, err := getTables()
			if err != nil {
				return "", err
			}
			return r.RenderTable3(), nil
		}},
		{"table4", func() (string, error) {
			r, err := getTables()
			if err != nil {
				return "", err
			}
			return r.RenderTable4(), nil
		}},
		{"overhead", func() (string, error) {
			r, err := getTables()
			if err != nil {
				return "", err
			}
			return r.RenderOverhead(), nil
		}},
		{"perturb", func() (string, error) {
			r, err := experiments.Perturbation(*seed)
			return r.Render(), err
		}},
		{"scale", func() (string, error) {
			r, err := experiments.Scale(*seed, *runs)
			return r.Render(), err
		}},
		{"strategies", func() (string, error) {
			r, err := experiments.StrategyCompare(*seed, nil)
			return r.Render(), err
		}},
		{"ipimodes", func() (string, error) {
			r, err := experiments.IPIModes(*seed, nil)
			return r.Render(), err
		}},
		{"highprio", func() (string, error) {
			r, err := experiments.HighPriorityIPI(*seed)
			return r.Render(), err
		}},
		{"idleopt", func() (string, error) {
			r, err := experiments.IdleOpt(*seed)
			return r.Render(), err
		}},
		{"threshold", func() (string, error) {
			r, err := experiments.FlushThreshold(*seed, 16)
			return r.Render(), err
		}},
		{"queue", func() (string, error) {
			r, err := experiments.QueueSize(*seed)
			return r.Render(), err
		}},
		{"taggedtlb", func() (string, error) {
			r, err := experiments.TaggedTLB(*seed)
			return r.Render(), err
		}},
		{"pools", func() (string, error) {
			r, err := experiments.Pools(*seed, 8)
			return r.Render(), err
		}},
		{"pageout", func() (string, error) {
			r, err := experiments.Pageout(*seed)
			return r.Render(), err
		}},
	}

	known := map[string]bool{"all": true}
	for _, j := range jobs {
		known[j.name] = true
	}
	for _, a := range args {
		if !known[a] {
			fmt.Fprintf(os.Stderr, "shootdownsim: unknown experiment %q\n\n", a)
			usage()
			os.Exit(2)
		}
	}

	for _, j := range jobs {
		if !all && !want[j.name] {
			continue
		}
		start := time.Now()
		out, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "shootdownsim: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %.1fs wall clock]\n\n", j.name, time.Since(start).Seconds())
	}
}
