// Command shootdownsim regenerates the tables and figures of "Translation
// Lookaside Buffer Consistency: A Software Approach" (Black et al., ASPLOS
// 1989) on the simulated multiprocessor.
//
// Usage:
//
//	shootdownsim [flags] <experiment>...
//
// Experiments: fig2, table1, table2, table3, table4, overhead, perturb,
// scale, strategies, ipimodes, highprio, idleopt, threshold, queue,
// taggedtlb, pools, pageout, faults, chaos, devices, explore, timetravel,
// profile, all.
//
// -faults injects deterministic hardware faults (dropped/delayed IPIs, slow
// responders, bus jitter) into every kernel; -failstop and -hotplug add
// processor fail-stop and hot-plug faults; -oracle attaches an independent
// TLB-consistency checker that fails a run if any stale translation is
// granted. The faults experiment runs a full campaign of fault scenarios
// against the watchdog-hardened protocol; the chaos experiment runs
// fail-stop/hot-plug schedules against a churn workload and delta-debugs
// any failing schedule into a minimal reproducer, replayable with -repro.
// The explore experiment forks the schedule at racy shootdown tie decisions
// (DPOR-lite) hunting for interleaving-dependent violations; timetravel
// snapshots a run mid-flight and proves replay-based restore is
// byte-identical.
//
// -trace captures a Chrome trace-event (Perfetto) session timeline of every
// kernel the experiments build; -metrics writes a Prometheus-style counter
// and histogram snapshot; -profile writes the virtual-time profiler's
// folded stacks, per-CPU phase timeline, lock/bus contention profile, and
// per-shootdown critical paths into a directory; -format selects
// human-readable tables or machine-readable JSON/CSV.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"shootdown/internal/experiments"
	"shootdown/internal/fault"
	"shootdown/internal/fault/shrink"
	"shootdown/internal/hostprof"
	"shootdown/internal/sim"
)

var (
	seed      = flag.Int64("seed", 42, "simulation seed (jitter, scheduling, workload randomness)")
	runs      = flag.Int("runs", 10, "runs per data point for the fig2/scale sweeps")
	format    = flag.String("format", "table", "result output format: table, json, or csv")
	faults    = flag.String("faults", "", `fault-injection spec applied to every kernel, e.g. "drop=0.1,delay=0.2,delaymax=2ms" (keys: drop, delay, delaymax, slow, slowmax, stuck, stuckfor, spurious, jitter, jittermax, failstop, failby, revive, reviveafter; "none" disables). The faults experiment adds this as a custom scenario.`)
	oracleOn  = flag.Bool("oracle", false, "attach the independent TLB-consistency oracle to every kernel; any stale translation granted fails the run")
	failstop  = flag.Bool("failstop", false, `processor fail-stop faults in every kernel (shorthand for -faults "failstop=0.9,failby=8ms"); failed CPUs stay down`)
	hotplug   = flag.Bool("hotplug", false, `fail-stop plus hot-plug: failed CPUs revive with a cold TLB (shorthand for -faults "failstop=0.9,failby=8ms,revive=1,reviveafter=4ms")`)
	repro     = flag.String("repro", "", "replay a minimized chaos reproducer JSON file (from the chaos or devices experiments or testdata corpus) and exit; exits non-zero if the replay diverges from the recorded verdict")
	chaosbug  = flag.Bool("chaosbug", false, "plant the intentional stale-translation bug in the chaos and devices experiments' runs (stale-TLB-after-revive and skip-dev-inval respectively), so the campaigns fail on purpose (pair with -flight to exercise the black-box path end to end)")
	devices   = flag.Int("devices", 2, "device-TLB count for the devices experiment's DMA-streaming workload")
	devfault  = flag.String("devfaults", "", `extra device-fault spec run as a custom scenario of the devices experiment, e.g. "devwedge=0.3,devstall=0.5,devstallmax=6ms" (keys: devstall, devstallmax, devdrop, devwedge, devreorder)`)
	budget    = flag.Int("explorebudget", 24, "schedule budget for the explore experiment: max forked schedules; same budget and seed explore the byte-identical set")
	travelAt  = flag.Duration("at", 5*time.Millisecond, "virtual-time instant the timetravel experiment snapshots and restores to")
	hostout   = flag.String("hostcost", "", "write the hostcost experiment's host-cost/v1 JSON artifact to this file")
	hostprofD = flag.String("hostprof", "", "also capture real cpu.pprof/heap.pprof profiles of the hostcost experiment into this directory")
	commit    = flag.String("commit", "", "commit hash stamped into the hostcost artifact's provenance")
)

// cli carries the shared -trace/-tracebuf/-metrics/-profile plumbing.
var cli = experiments.CLI{Tool: "shootdownsim"}

func init() { cli.RegisterFlags(flag.CommandLine, 1<<21) }

func usage() {
	fmt.Fprintf(os.Stderr, `usage: shootdownsim [flags] <experiment>...

Reproduces the evaluation of the Mach TLB shootdown paper (ASPLOS 1989)
on a simulated 16-processor Encore Multimax.

experiments:
  fig2        Figure 2: basic costs of TLB shootdown (1..15 processors)
  table1      Table 1: effect of lazy evaluation (Mach build, Parthenon)
  table2      Table 2: kernel pmap shootdowns, initiator side
  table3      Table 3: user pmap shootdowns, initiator side
  table4      Table 4: responder results
  overhead    Section 8: machine-wide overhead per application
  perturb     Section 6.1: instrumentation perturbation check
  scale       Sections 8/11: scaling to larger machines (measured, not
              just extrapolated)
  strategies  Ablation: shootdown vs hardware remote-invalidate vs
              postponed-IPI vs timer-flush
  ipimodes    Ablation: unicast vs multicast vs broadcast interrupts
  highprio    Ablation: high-priority software interrupt
  idleopt     Ablation: idle-processor optimization
  threshold   Ablation: invalidate-vs-flush threshold
  queue       Ablation: consistency-action queue sizing
  taggedtlb   Extension: ASID-tagged TLBs with lazy release (§10)
  pools       Extension: processor pools for NUMA machines (§8)
  pageout     Extension: pageout under memory pressure (§5)
  faults      Robustness: fault-injection campaign (dropped/delayed IPIs,
              slow/stuck responders) with watchdog recovery and the
              TLB-consistency oracle
  chaos       Robustness: processor fail-stop & hot-plug campaign against
              the churn workload, with delta-debugging minimization of any
              failing fault schedule (replay one with -repro)
  devices     Robustness: IOMMU/device-TLB chaos campaign against the
              DMA-streaming workload — stalled completions, deaf doorbells,
              wedged queues, and CPU fail-stop during a device stall — with
              the quarantine ladder armed and the stale-DMA oracle checking
              every transfer (-devices sets the device count, -devfaults
              adds a custom scenario)
  explore     Robustness: DPOR-lite schedule explorer — fork the run at
              every racy shootdown tie decision within -explorebudget,
              replay each fork down the other branch, and shrink any
              violation found via restore-to-prefix delta debugging
  timetravel  Robustness: snapshot the hot-plug churn run at -at virtual
              time, rebuild and replay a fresh world to the same event
              boundary, and verify restore is byte-identical (then verify
              both continuations match too)
  profile     Observability: the Figure 2 workload under the virtual-time
              profiler, every shootdown's critical path reconstructed and
              its cost attributed to phases (pair with -profile <dir>)
  hostcost    Observability: host-cost attribution — real wall time and
              heap bytes of the simulator itself, attributed to per-site
              counters in the simulated packages, phase by phase (fig2,
              table1, snapshot). -hostcost <file> writes the host-cost/v1
              artifact; -hostprof <dir> adds cpu/heap pprof profiles
  all         everything above

flags:
`)
	flag.PrintDefaults()
}

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if *repro != "" {
		replayRepro(*repro)
		return
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch *format {
	case "table", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "shootdownsim: unknown format %q (want table, json, or csv)\n", *format)
		os.Exit(2)
	}
	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	all := want["all"]

	// Observability hooks: one session tracer and one profiler shared by
	// every kernel the experiments build, and a metrics snapshot of the
	// last completed run.
	inp, err := cli.Instrument()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shootdownsim: %v\n", err)
		os.Exit(2)
	}
	in := *inp
	if *faults != "" {
		fc, err := fault.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shootdownsim: -faults: %v\n", err)
			os.Exit(2)
		}
		fc.Seed = *seed
		in.Faults = &fc
	}
	if *failstop || *hotplug {
		fc := fault.Config{Seed: *seed}
		if in.Faults != nil {
			fc = *in.Faults
		}
		fc.FailStop, fc.FailStopBy = 0.9, 8_000_000
		if *hotplug {
			fc.Revive, fc.ReviveAfterMax = 1, 4_000_000
		}
		in.Faults = &fc
	}
	in.Oracle = *oracleOn

	// Wall clock injected into the shrink/explore campaigns: the simulated
	// packages may not read real time themselves, so package main hands
	// them a millisecond counter.
	progStart := time.Now()
	wallMS := func() int64 { return time.Since(progStart).Milliseconds() }

	// Tables 2-4 and the overhead analysis share one set of application
	// runs; compute them lazily and only once.
	var tables *experiments.TablesResult
	getTables := func() (*experiments.TablesResult, error) {
		if tables != nil {
			return tables, nil
		}
		r, err := experiments.Tables234(*seed, in)
		if err != nil {
			return nil, err
		}
		tables = &r
		return tables, nil
	}

	type job struct {
		name string
		run  func() (any, string, error)
	}
	jobs := []job{
		{"fig2", func() (any, string, error) {
			r, err := experiments.Fig2(*seed, *runs, in)
			return r, r.Render(), err
		}},
		{"table1", func() (any, string, error) {
			r, err := experiments.Table1(*seed, in)
			return r, r.Render(), err
		}},
		{"table2", func() (any, string, error) {
			r, err := getTables()
			if err != nil {
				return nil, "", err
			}
			return r, r.RenderTable2(), nil
		}},
		{"table3", func() (any, string, error) {
			r, err := getTables()
			if err != nil {
				return nil, "", err
			}
			return r, r.RenderTable3(), nil
		}},
		{"table4", func() (any, string, error) {
			r, err := getTables()
			if err != nil {
				return nil, "", err
			}
			return r, r.RenderTable4(), nil
		}},
		{"overhead", func() (any, string, error) {
			r, err := getTables()
			if err != nil {
				return nil, "", err
			}
			return r, r.RenderOverhead(), nil
		}},
		{"perturb", func() (any, string, error) {
			r, err := experiments.Perturbation(*seed, in)
			return r, r.Render(), err
		}},
		{"scale", func() (any, string, error) {
			r, err := experiments.Scale(*seed, *runs, in)
			return r, r.Render(), err
		}},
		{"strategies", func() (any, string, error) {
			r, err := experiments.StrategyCompare(*seed, nil, in)
			return r, r.Render(), err
		}},
		{"ipimodes", func() (any, string, error) {
			r, err := experiments.IPIModes(*seed, nil, in)
			return r, r.Render(), err
		}},
		{"highprio", func() (any, string, error) {
			r, err := experiments.HighPriorityIPI(*seed, in)
			return r, r.Render(), err
		}},
		{"idleopt", func() (any, string, error) {
			r, err := experiments.IdleOpt(*seed, in)
			return r, r.Render(), err
		}},
		{"threshold", func() (any, string, error) {
			r, err := experiments.FlushThreshold(*seed, 16, in)
			return r, r.Render(), err
		}},
		{"queue", func() (any, string, error) {
			r, err := experiments.QueueSize(*seed, in)
			return r, r.Render(), err
		}},
		{"taggedtlb", func() (any, string, error) {
			r, err := experiments.TaggedTLB(*seed, in)
			return r, r.Render(), err
		}},
		{"pools", func() (any, string, error) {
			r, err := experiments.Pools(*seed, 8, in)
			return r, r.Render(), err
		}},
		{"pageout", func() (any, string, error) {
			r, err := experiments.Pageout(*seed, in)
			return r, r.Render(), err
		}},
		{"faults", func() (any, string, error) {
			r, err := experiments.FaultCampaign(*seed, in)
			return r, r.Render(), err
		}},
		{"chaos", func() (any, string, error) {
			r, err := experiments.ChaosCampaign(*seed,
				experiments.ChaosOptions{Shrink: true, PlantBug: *chaosbug, WallClock: wallMS}, in)
			return r, r.Render(), err
		}},
		{"devices", func() (any, string, error) {
			r, err := experiments.DeviceChaosCampaign(*seed, experiments.DeviceChaosOptions{
				Devices:   *devices,
				Shrink:    true,
				PlantBug:  *chaosbug,
				ExtraSpec: *devfault,
				WallClock: wallMS,
			}, in)
			return r, r.Render(), err
		}},
		{"explore", func() (any, string, error) {
			r, err := experiments.ExploreCampaign(*seed,
				experiments.ExploreOptions{Budget: *budget, PlantBug: *chaosbug, WallClock: wallMS})
			return r, r.Render(), err
		}},
		{"timetravel", func() (any, string, error) {
			r, err := experiments.TimeTravel(*seed, sim.Time(*travelAt), 0)
			return r, r.Render(), err
		}},
		{"profile", func() (any, string, error) {
			r, err := experiments.Profile(*seed, *runs, in)
			return r, r.Render(), err
		}},
		{"hostcost", func() (any, string, error) {
			// The sampler reads the real clock, ReadMemStats, and pprof —
			// all banned inside the simulated packages — so package main
			// constructs it and injects it, like the wall clock above.
			sampler := hostprof.NewSampler()
			if *hostprofD != "" {
				if err := sampler.StartProfiles(*hostprofD); err != nil {
					return nil, "", err
				}
			}
			r, err := experiments.HostCost(*seed, experiments.HostCostOptions{
				Sampler: sampler,
				Commit:  *commit,
			}, in)
			if *hostprofD != "" {
				if perr := sampler.StopProfiles(); perr != nil && err == nil {
					err = perr
				}
			}
			if err != nil {
				return nil, "", err
			}
			if *hostout != "" {
				if werr := writeHostCost(*hostout, r.Report); werr != nil {
					return nil, "", werr
				}
				fmt.Fprintf(os.Stderr, "shootdownsim: wrote host-cost artifact to %s\n", *hostout)
			}
			return r, r.Render(), nil
		}},
	}

	known := map[string]bool{"all": true}
	for _, j := range jobs {
		known[j.name] = true
	}
	for _, a := range args {
		if !known[a] {
			fmt.Fprintf(os.Stderr, "shootdownsim: unknown experiment %q\n\n", a)
			usage()
			os.Exit(2)
		}
	}

	var results []experiments.Named
	for _, j := range jobs {
		if !all && !want[j.name] {
			continue
		}
		start := time.Now()
		res, text, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "shootdownsim: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		results = append(results, experiments.Named{Name: j.name, Result: res})
		if *format == "table" {
			fmt.Println(text)
			fmt.Printf("[%s completed in %.1fs wall clock]\n\n", j.name, time.Since(start).Seconds())
		}
	}

	switch *format {
	case "json":
		if err := experiments.WriteJSON(os.Stdout, experiments.Envelope{
			Seed: *seed, Runs: *runs, Experiments: results,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "shootdownsim: json: %v\n", err)
			os.Exit(1)
		}
	case "csv":
		if err := experiments.WriteCSV(os.Stdout, results); err != nil {
			fmt.Fprintf(os.Stderr, "shootdownsim: csv: %v\n", err)
			os.Exit(1)
		}
	}

	if err := cli.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "shootdownsim: %v\n", err)
		os.Exit(1)
	}
}

// writeHostCost writes the host-cost/v1 artifact to path.
func writeHostCost(path string, r *hostprof.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replayRepro re-executes a minimized chaos reproducer: exit 0 only if
// the replay reaches exactly the recorded verdict.
func replayRepro(path string) {
	r, err := shrink.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shootdownsim: -repro: %v\n", err)
		os.Exit(2)
	}
	verdict, detail, err := experiments.ReplayRepro(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shootdownsim: -repro: %v\n", err)
		os.Exit(2)
	}
	keep := make([]string, len(r.Keep))
	for i, id := range r.Keep {
		keep[i] = id.String()
	}
	fmt.Printf("repro %s: workload=%s ncpus=%d seed=%d schedule=[%s]\n",
		path, r.Workload, r.NCPUs, r.Seed, strings.Join(keep, " "))
	if verdict == r.Verdict {
		fmt.Printf("replay reproduced the recorded verdict %q", verdict)
		if detail != "" {
			fmt.Printf(": %s", firstLine(detail))
		}
		fmt.Println()
		return
	}
	fmt.Printf("DIVERGENCE: replay verdict %q, recorded %q", verdict, r.Verdict)
	if detail != "" {
		fmt.Printf(" (%s)", firstLine(detail))
	}
	fmt.Println()
	os.Exit(1)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
