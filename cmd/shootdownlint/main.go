// Command shootdownlint runs the repository's static-analysis suite: the
// determinism, concurrency, interrupt-priority, lock-ordering,
// snapshot-coverage, hook-purity, and RNG-discipline analyzers described
// in internal/analysis and DESIGN.md §10 and §15.
//
// Usage:
//
//	shootdownlint [-list] [-json] [-suppressions] [packages]
//
// With no packages it checks the whole module (./...). -json writes the
// findings (including unused //lint:allow suppressions) to stdout as a
// deterministically sorted JSON array of {file, line, col, analyzer,
// message} objects — sorted by file, line, column, analyzer, message —
// instead of the human-readable listing. Exit status is 0 when clean, 1
// when findings were reported, 2 on usage or load errors.
package main

import (
	"os"

	"shootdown/internal/analysis/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr))
}
