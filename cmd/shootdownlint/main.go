// Command shootdownlint runs the repository's static-analysis suite: the
// determinism, concurrency, interrupt-priority, and lock-ordering
// analyzers described in internal/analysis and DESIGN.md §10.
//
// Usage:
//
//	shootdownlint [-list] [-suppressions] [packages]
//
// With no packages it checks the whole module (./...). Exit status is 0
// when clean, 1 when findings were reported, 2 on usage or load errors.
package main

import (
	"os"

	"shootdown/internal/analysis/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr))
}
