// Command tlbtest is the paper's §5.1 TLB-consistency tester as a
// standalone tool: child threads increment counters in a shared read-write
// page, the main thread reprotects the page read-only and immediately
// snapshots the counters, the spinning children take unrecoverable write
// faults, and any counter that advanced after the snapshot exposes an
// inconsistent TLB entry.
//
// With -strategy none the tool demonstrates the failure; with the default
// Mach shootdown it demonstrates the fix, and reports the basic cost of
// the single k-processor shootdown the run causes.
package main

import (
	"flag"
	"fmt"
	"os"

	"shootdown/internal/baseline"
	"shootdown/internal/core"
	"shootdown/internal/machine"
	"shootdown/internal/tlb"
	"shootdown/internal/workload"
)

func main() {
	cpus := flag.Int("cpus", 16, "number of simulated processors")
	children := flag.Int("children", 4, "child threads (processors shot at)")
	seed := flag.Int64("seed", 1, "simulation seed")
	strategy := flag.String("strategy", "shootdown",
		"consistency mechanism: shootdown, none, hardware-remote, postponed-ipi, timer-flush")
	flag.Parse()

	cfg := workload.TesterConfig{
		NCPUs:    *cpus,
		Children: *children,
		Seed:     *seed,
	}
	switch *strategy {
	case "shootdown":
		// default strategy
	case "none":
		cfg.App.Strategy = func(*machine.Machine) (core.Strategy, error) {
			return baseline.NewNone(), nil
		}
	case "hardware-remote":
		cfg.App.RemoteInvalidate = true
		cfg.App.TLB = tlb.Config{Writeback: tlb.WritebackInterlocked}
		cfg.App.Strategy = func(m *machine.Machine) (core.Strategy, error) {
			return baseline.NewHardwareRemote(m)
		}
	case "postponed-ipi":
		cfg.App.TLB = tlb.Config{Writeback: tlb.WritebackNone}
		cfg.App.Strategy = func(m *machine.Machine) (core.Strategy, error) {
			return baseline.NewPostponedIPI(m)
		}
	case "timer-flush":
		cfg.KeepTimer = true
		cfg.App.TLB = tlb.Config{Writeback: tlb.WritebackInterlocked}
		cfg.App.Strategy = func(m *machine.Machine) (core.Strategy, error) {
			return baseline.NewTimerFlush(m)
		}
	default:
		fmt.Fprintf(os.Stderr, "tlbtest: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	res, err := workload.RunTester(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlbtest: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("TLB consistency tester: %d CPUs, %d children, strategy %s\n",
		*cpus, *children, *strategy)
	fmt.Printf("counters at reprotect:  %v\n", res.Saved)
	fmt.Printf("counters after faults:  %v\n", res.Final)
	if res.Inconsistent {
		fmt.Printf("\nINCONSISTENT: counters advanced after vm_protect returned —\n")
		fmt.Printf("a stale TLB entry allowed writes to a read-only page.\n")
		os.Exit(1)
	}
	fmt.Printf("\nconsistent: no write completed after vm_protect returned\n")
	fmt.Printf("vm_protect latency: %.0f µs\n", res.ProtectUS)
	if res.UserEvents == 1 {
		fmt.Printf("shootdown: %d processors shot at, initiator elapsed %.0f µs\n",
			res.ProcsShot, res.ShootUS)
	}
}
