// Command tlbtest is the paper's §5.1 TLB-consistency tester as a
// standalone tool: child threads increment counters in a shared read-write
// page, the main thread reprotects the page read-only and immediately
// snapshots the counters, the spinning children take unrecoverable write
// faults, and any counter that advanced after the snapshot exposes an
// inconsistent TLB entry.
//
// With -strategy none the tool demonstrates the failure; with the default
// Mach shootdown it demonstrates the fix, and reports the basic cost of
// the single k-processor shootdown the run causes.
//
// -trace writes a Chrome trace-event timeline of the run, -metrics a
// Prometheus-style snapshot, -profile the virtual-time profiler's folded
// stacks and per-shootdown critical paths, and -format json a
// machine-readable result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"shootdown/internal/baseline"
	"shootdown/internal/core"
	"shootdown/internal/experiments"
	"shootdown/internal/machine"
	"shootdown/internal/tlb"
	"shootdown/internal/workload"
)

func main() {
	cpus := flag.Int("cpus", 16, "number of simulated processors")
	children := flag.Int("children", 4, "child threads (processors shot at)")
	seed := flag.Int64("seed", 1, "simulation seed")
	strategy := flag.String("strategy", "shootdown",
		"consistency mechanism: shootdown, none, hardware-remote, postponed-ipi, timer-flush")
	format := flag.String("format", "table", "result output format: table or json")
	cli := experiments.CLI{Tool: "tlbtest"}
	cli.RegisterFlags(flag.CommandLine, 1<<20)
	flag.Parse()

	switch *format {
	case "table", "json":
	default:
		fmt.Fprintf(os.Stderr, "tlbtest: unknown format %q (want table or json)\n", *format)
		os.Exit(2)
	}

	cfg := workload.TesterConfig{
		NCPUs:    *cpus,
		Children: *children,
		Seed:     *seed,
	}
	switch *strategy {
	case "shootdown":
		// default strategy
	case "none":
		cfg.App.Strategy = func(*machine.Machine) (core.Strategy, error) {
			return baseline.NewNone(), nil
		}
	case "hardware-remote":
		cfg.App.RemoteInvalidate = true
		cfg.App.TLB = tlb.Config{Writeback: tlb.WritebackInterlocked}
		cfg.App.Strategy = func(m *machine.Machine) (core.Strategy, error) {
			return baseline.NewHardwareRemote(m)
		}
	case "postponed-ipi":
		cfg.App.TLB = tlb.Config{Writeback: tlb.WritebackNone}
		cfg.App.Strategy = func(m *machine.Machine) (core.Strategy, error) {
			return baseline.NewPostponedIPI(m)
		}
	case "timer-flush":
		cfg.KeepTimer = true
		cfg.App.TLB = tlb.Config{Writeback: tlb.WritebackInterlocked}
		cfg.App.Strategy = func(m *machine.Machine) (core.Strategy, error) {
			return baseline.NewTimerFlush(m)
		}
	default:
		fmt.Fprintf(os.Stderr, "tlbtest: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	in, err := cli.Instrument()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlbtest: %v\n", err)
		os.Exit(2)
	}
	// Apply the hooks without clobbering the strategy/hardware overrides
	// the -strategy switch just installed.
	cfg.App = in.App(cfg.App)

	res, err := workload.RunTester(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlbtest: %v\n", err)
		os.Exit(1)
	}

	if err := cli.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "tlbtest: %v\n", err)
		os.Exit(1)
	}

	if *format == "json" {
		doc := struct {
			CPUs     int                   `json:"cpus"`
			Children int                   `json:"children"`
			Seed     int64                 `json:"seed"`
			Strategy string                `json:"strategy"`
			Result   workload.TesterResult `json:"result"`
		}{*cpus, *children, *seed, *strategy, res}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "tlbtest: json: %v\n", err)
			os.Exit(1)
		}
		if res.Inconsistent {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("TLB consistency tester: %d CPUs, %d children, strategy %s\n",
		*cpus, *children, *strategy)
	fmt.Printf("counters at reprotect:  %v\n", res.Saved)
	fmt.Printf("counters after faults:  %v\n", res.Final)
	if res.Inconsistent {
		fmt.Printf("\nINCONSISTENT: counters advanced after vm_protect returned —\n")
		fmt.Printf("a stale TLB entry allowed writes to a read-only page.\n")
		os.Exit(1)
	}
	fmt.Printf("\nconsistent: no write completed after vm_protect returned\n")
	fmt.Printf("vm_protect latency: %.0f µs\n", res.ProtectUS)
	if res.UserEvents == 1 {
		fmt.Printf("shootdown: %d processors shot at, initiator elapsed %.0f µs\n",
			res.ProcsShot, res.ShootUS)
	}
}
