// Command tlbtrace queries, validates, and diffs the repo's run artifacts:
// Chrome trace-event session timelines (-trace), virtual-time profile
// directories (-profile), and flight-recorder black boxes (-flight). It is
// the post-mortem half of the observability stack — the tool you point at
// a CI failure's black box or at two profiled runs to find which shootdown
// phase got slower.
//
// Usage:
//
//	tlbtrace validate [-results results.json] [-blackbox box.json] [trace.json]
//	tlbtrace query [-cpu N] [-cat c] [-name substr] [-from us] [-to us] [-hist] [-events] <trace.json|blackbox.json>
//	tlbtrace dag [-seq N] <shootdowns.json|profile-dir|blackbox.json>
//	tlbtrace diff <old> <new>   (each: shootdowns.json | profile dir | black box)
//
// validate is the CI smoke check (the former scripts/validatetrace):
// balanced spans from every instrumented layer, well-formed results
// envelopes, internally consistent black boxes. It sniffs whole-simulation
// snapshots — standalone files or a black box's embedded restore point —
// and verifies their digest and JSON round trip, and checks a device
// black box's "devices" section (completion-queue watermarks, quarantine
// coupling). query filters spans and aggregates their durations
// (quantiles, optional log2 histogram); -events counts raw instants
// instead, which is how device doorbell/completion/quarantine markers
// surface. dag
// prints one shootdown's critical path with per-responder attribution.
// diff aligns two runs by shootdown identity and attributes the
// virtual-time delta to DAG edges.
package main

import (
	"flag"
	"fmt"
	"os"

	"shootdown/internal/artifact"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: tlbtrace <command> [flags] <args>

commands:
  validate [-results results.json] [-blackbox box.json] [trace.json|snapshot.json]
            check artifacts: a Chrome trace (balanced spans from every
            layer), a -format json results file, a flight-recorder black box
            (plus its embedded restore point), or a whole-simulation
            snapshot (digest + JSON round trip) — formats are sniffed
  query     [-cpu N] [-cat c] [-name substr] [-from us] [-to us] [-hist] [-events] <trace|blackbox>
            filter spans and aggregate durations per span name; -events
            tallies raw instants (device markers) instead of spans
  dag       [-seq N] <shootdowns.json|profile-dir|blackbox>
            print one shootdown's critical path (default: the slowest)
  diff      <old> <new>
            align two profiled runs by shootdown identity and attribute
            the virtual-time delta to DAG edges
  hostcost  [-top N] [-validate] [-mincoverage pct] [-bench bench.txt] <host-cost.json>
            render a host-cost/v1 artifact (shootdownsim -hostcost): per-
            phase host seconds / allocator deltas and the top-N allocation
            sites; -validate checks internal consistency, -mincoverage
            gates on exact-site coverage, -bench additionally gates the
            headline phase's counted bytes against BenchmarkFig2BasicCost's
            measured B/op from a go test -bench -benchmem output file
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "dag":
		err = cmdDAG(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "hostcost":
		err = cmdHostCost(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "tlbtrace: unknown command %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlbtrace: %v\n", err)
		os.Exit(1)
	}
}

// cmdValidate is the CI smoke check over any combination of artifacts.
func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	results := fs.String("results", "", "also validate a shootdownsim -format json output file")
	blackbox := fs.String("blackbox", "", "also validate a flight-recorder black box")
	fs.Parse(args)
	if fs.NArg() > 1 || (fs.NArg() == 0 && *results == "" && *blackbox == "") {
		return fmt.Errorf("usage: tlbtrace validate [-results results.json] [-blackbox box.json] [trace.json]")
	}
	if fs.NArg() == 1 {
		if artifact.SniffSnapshot(fs.Arg(0)) {
			// A standalone whole-simulation snapshot: digest + round trip.
			s, err := artifact.LoadSnapshot(fs.Arg(0))
			if err != nil {
				return err
			}
			summary, err := artifact.ValidateSnapshot(s)
			if err != nil {
				return fmt.Errorf("%s: %v", fs.Arg(0), err)
			}
			fmt.Printf("validate: %s: %s\n", fs.Arg(0), summary)
		} else {
			doc, err := artifact.LoadEvents(fs.Arg(0))
			if err != nil {
				return err
			}
			summary, err := doc.Validate()
			if err != nil {
				return fmt.Errorf("%s: %v", fs.Arg(0), err)
			}
			fmt.Printf("validate: %s: %s\n", fs.Arg(0), summary)
		}
	}
	if *results != "" {
		summary, err := artifact.ValidateResults(*results)
		if err != nil {
			return fmt.Errorf("%s: %v", *results, err)
		}
		fmt.Printf("validate: %s: %s\n", *results, summary)
	}
	if *blackbox != "" {
		box, err := artifact.LoadBlackBox(*blackbox)
		if err != nil {
			return err
		}
		summary, err := artifact.ValidateBlackBox(box)
		if err != nil {
			return fmt.Errorf("%s: %v", *blackbox, err)
		}
		fmt.Printf("validate: %s: %s\n", *blackbox, summary)
		// A box from a snapshot-taking run embeds a restore point; verify
		// its digest and round trip too. (Older boxes have no section.)
		if s, ok, err := artifact.SnapshotFromBox(box); err != nil {
			return fmt.Errorf("%s: %v", *blackbox, err)
		} else if ok {
			summary, err := artifact.ValidateSnapshot(s)
			if err != nil {
				return fmt.Errorf("%s: snapshots: %v", *blackbox, err)
			}
			fmt.Printf("validate: %s: snapshots: %s\n", *blackbox, summary)
		}
		// A box from a device-bearing run carries a "devices" section:
		// check its completion-queue and quarantine invariants.
		if devs, ok, err := artifact.DevicesFromBox(box); err != nil {
			return fmt.Errorf("%s: %v", *blackbox, err)
		} else if ok {
			summary, err := artifact.ValidateDevices(devs)
			if err != nil {
				return fmt.Errorf("%s: devices: %v", *blackbox, err)
			}
			fmt.Printf("validate: %s: devices: %s\n", *blackbox, summary)
		}
	}
	fmt.Println("validate: ok")
	return nil
}

// cmdQuery filters spans and aggregates durations.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	cpu := fs.Int("cpu", -1, "restrict to one CPU timeline (-1 = all)")
	cat := fs.String("cat", "", "exact category match: sim, machine, shootdown, tlb, kernel, device")
	name := fs.String("name", "", "substring match on the span name")
	from := fs.Float64("from", 0, "window start in virtual microseconds")
	to := fs.Float64("to", 0, "window end in virtual microseconds (0 = open)")
	hist := fs.Bool("hist", false, "also print a log2 duration histogram of the matched spans")
	events := fs.Bool("events", false, "count matched raw events per name instead of pairing spans (device doorbell/completion/quarantine markers are instants and only appear here)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tlbtrace query [flags] <trace.json|blackbox.json>")
	}
	doc, err := artifact.LoadEvents(fs.Arg(0))
	if err != nil {
		return err
	}
	f := artifact.Filter{CPU: *cpu, Cat: *cat, Name: *name, FromUS: *from, ToUS: *to}
	if *events {
		counts := artifact.CountEvents(doc, f)
		if len(counts) == 0 {
			fmt.Println("query: no events matched")
			return nil
		}
		total := 0
		for _, c := range counts {
			total += c.Count
		}
		fmt.Printf("query: %d events matched (%d loaded, %d dropped by the ring)\n\n",
			total, len(doc.Events), doc.Dropped)
		fmt.Print(artifact.FormatEventTable(counts))
		return nil
	}
	matched := f.Select(artifact.Spans(doc))
	if len(matched) == 0 {
		fmt.Println("query: no spans matched")
		return nil
	}
	fmt.Printf("query: %d spans matched (%d events loaded, %d dropped by the ring)\n\n",
		len(matched), len(doc.Events), doc.Dropped)
	fmt.Print(artifact.FormatAggTable(artifact.Aggregate(matched)))
	if *hist {
		fmt.Println()
		fmt.Print(artifact.FormatHistogram(artifact.Histogram(matched)))
	}
	return nil
}

// cmdDAG prints one shootdown's critical path.
func cmdDAG(args []string) error {
	fs := flag.NewFlagSet("dag", flag.ExitOnError)
	seq := fs.Int("seq", -1, "shootdown sequence number (-1 = the slowest)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tlbtrace dag [-seq N] <shootdowns.json|profile-dir|blackbox.json>")
	}
	exp, err := artifact.LoadShootdowns(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(exp.Records) == 0 {
		return fmt.Errorf("%s: no shootdowns recorded", fs.Arg(0))
	}
	if *seq >= 0 {
		for _, r := range exp.Records {
			if r.Seq == *seq {
				fmt.Print(artifact.FormatDAG(exp, r))
				return nil
			}
		}
		return fmt.Errorf("%s: no shootdown with seq %d (have %d records)", fs.Arg(0), *seq, len(exp.Records))
	}
	r, ok := artifact.SlowestShootdown(exp)
	if !ok {
		return fmt.Errorf("%s: no shootdowns recorded", fs.Arg(0))
	}
	fmt.Print(artifact.FormatDAG(exp, r))
	return nil
}

// cmdDiff aligns two runs and attributes the delta.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: tlbtrace diff <old> <new>")
	}
	oldExp, err := artifact.LoadShootdowns(fs.Arg(0))
	if err != nil {
		return err
	}
	newExp, err := artifact.LoadShootdowns(fs.Arg(1))
	if err != nil {
		return err
	}
	fmt.Print(artifact.DiffShootdowns(oldExp, newExp).Format())
	return nil
}
