package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"shootdown/internal/hostprof"
)

// cmdHostCost renders and validates a host-cost/v1 artifact: the per-phase
// host seconds / allocator deltas and the top-N allocation sites, with an
// optional coverage gate against a `go test -bench` output file.
func cmdHostCost(args []string) error {
	fs := flag.NewFlagSet("hostcost", flag.ExitOnError)
	top := fs.Int("top", 10, "allocation sites to print per report")
	validate := fs.Bool("validate", false, "check the artifact's internal consistency (format tag, provenance, per-phase site sums, coverage recomputation)")
	minCov := fs.Float64("mincoverage", 0, "fail unless exact-site coverage of the headline phase is at least this percentage")
	benchFile := fs.String("bench", "", "go test -bench output file; fail unless the headline phase's counted bytes reach -mincoverage percent (default 80) of BenchmarkFig2BasicCost's measured B/op")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tlbtrace hostcost [-top N] [-validate] [-mincoverage pct] [-bench bench.txt] <host-cost.json>")
	}
	r, err := hostprof.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *validate {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("%s: %v", fs.Arg(0), err)
		}
		fmt.Printf("hostcost: %s: valid %s artifact, %d phases, headline %q\n",
			fs.Arg(0), r.Format, len(r.Phases), r.Headline)
	}
	if *minCov > 0 {
		if err := r.CheckCoverage(*minCov); err != nil {
			return fmt.Errorf("%s: %v", fs.Arg(0), err)
		}
		fmt.Printf("hostcost: coverage %.1f%% ≥ %.0f%% floor\n", r.CoveragePct, *minCov)
	}
	if *benchFile != "" {
		floor := *minCov
		if floor == 0 {
			floor = 80
		}
		bop, err := benchBytesPerOp(*benchFile, "BenchmarkFig2BasicCost")
		if err != nil {
			return err
		}
		hp := r.HeadlinePhase()
		if hp == nil {
			return fmt.Errorf("%s: headline phase %q not in artifact", fs.Arg(0), r.Headline)
		}
		pct := 100 * float64(hp.CountedBytes) / float64(bop)
		if pct < floor {
			return fmt.Errorf("%s: headline phase %q counts %d B, only %.1f%% of BenchmarkFig2BasicCost's %d B/op (floor %.0f%%)",
				fs.Arg(0), hp.Name, hp.CountedBytes, pct, bop, floor)
		}
		fmt.Printf("hostcost: headline counts %.1f%% of BenchmarkFig2BasicCost's %d B/op (floor %.0f%%)\n", pct, bop, floor)
	}
	fmt.Print(r.Render(*top))
	return nil
}

// benchBytesPerOp extracts the B/op metric for the named benchmark from a
// `go test -bench -benchmem` output file. Sub-benchmark suffixes
// (Benchmark<name>-<GOMAXPROCS>) are matched; the first matching line wins.
func benchBytesPerOp(path, name string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], name) {
			continue
		}
		// Name must be exact up to a -GOMAXPROCS suffix, not a prefix of a
		// longer benchmark name.
		if rest := fields[0][len(name):]; rest != "" && !strings.HasPrefix(rest, "-") {
			continue
		}
		for i := 2; i < len(fields)-1; i++ {
			if fields[i+1] == "B/op" {
				v, err := strconv.ParseInt(fields[i], 10, 64)
				if err != nil {
					return 0, fmt.Errorf("%s: bad B/op value %q for %s", path, fields[i], name)
				}
				return v, nil
			}
		}
		return 0, fmt.Errorf("%s: %s line has no B/op metric (run with -benchmem)", path, name)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("%s: no %s result found", path, name)
}
